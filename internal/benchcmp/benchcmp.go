// Package benchcmp compares two gdpbench -json snapshots and classifies
// each experiment's timing drift, the logic behind the cmd/benchdiff CI
// gate. An experiment regresses when its elapsed time grows by more than
// Options.MaxRatio over the baseline (only baselines above Options.MinBase
// are compared — sub-threshold runs are all noise), when its allocs/op
// grow by more than Options.MaxAllocRatio (above the Options.MinAllocs
// floor; 0 disables), or when its ok flag flips to false. Experiments
// present on only one side are reported but never fatal, so adding or
// retiring a benchmark does not break the gate.
package benchcmp

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"
)

// Experiment is one row of a gdpbench -json snapshot. AllocsPerOp and
// BytesPerOp are absent (zero) in snapshots predating the allocation
// gate; such rows are never alloc-compared.
type Experiment struct {
	ID          string `json:"id"`
	Title       string `json:"title"`
	OK          bool   `json:"ok"`
	ElapsedNS   int64  `json:"elapsed_ns"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
}

// Snapshot is the subset of the gdpbench -json schema the gate reads.
type Snapshot struct {
	OK          bool         `json:"ok"`
	Experiments []Experiment `json:"experiments"`
}

// Parse decodes a snapshot and rejects empty ones (an empty experiment
// list means the producing run crashed, not that everything got faster).
func Parse(data []byte, name string) (*Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	if len(s.Experiments) == 0 {
		return nil, fmt.Errorf("%s: no experiments in snapshot", name)
	}
	return &s, nil
}

// Load reads and parses a snapshot file.
func Load(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(data, path)
}

// Options tune the gate.
type Options struct {
	// MaxRatio fails an experiment when current/baseline elapsed exceeds
	// it. A ratio exactly at MaxRatio passes.
	MaxRatio float64
	// MinBase is the noise floor: experiments whose baseline elapsed is
	// below it are not timing-compared (ok-flips still count).
	MinBase time.Duration
	// MaxAllocRatio fails an experiment when current/baseline allocs per
	// op exceeds it. 0 disables the allocation gate (the default, so old
	// baselines without allocation fields keep working).
	MaxAllocRatio float64
	// MinAllocs is the allocation noise floor: experiments whose baseline
	// allocs/op is below it are not alloc-compared. Shields tiny
	// experiments where a handful of runtime-internal allocations double
	// the count.
	MinAllocs int64
}

// Verdict classifies one experiment's drift.
type Verdict string

const (
	// VerdictOK: timing within MaxRatio.
	VerdictOK Verdict = "ok"
	// VerdictRegressed: current/baseline elapsed exceeded MaxRatio.
	VerdictRegressed Verdict = "REGRESS"
	// VerdictBroken: the ok flag flipped to false. Always fatal, even
	// below the noise floor — correctness is never noise.
	VerdictBroken Verdict = "BROKEN"
	// VerdictNew: present only in the current run. Not fatal.
	VerdictNew Verdict = "new"
	// VerdictGone: present only in the baseline. Not fatal.
	VerdictGone Verdict = "gone"
	// VerdictSkipped: baseline below the noise floor, not compared.
	VerdictSkipped Verdict = "skip"
)

// Fatal reports whether the verdict fails the gate.
func (v Verdict) Fatal() bool { return v == VerdictRegressed || v == VerdictBroken }

// Row is one experiment's comparison outcome.
type Row struct {
	ID      string
	Title   string
	Verdict Verdict
	// Base and Cur are the elapsed times on each side (zero for the
	// missing side of new/gone rows).
	Base, Cur time.Duration
	// Ratio is Cur/Base for timing-compared rows, 0 otherwise.
	Ratio float64
	// BaseAllocs/CurAllocs are the allocs-per-op on each side; AllocRatio
	// is their quotient for alloc-compared rows, 0 otherwise.
	BaseAllocs, CurAllocs int64
	AllocRatio            float64
	// AllocRegressed marks a row whose (possibly OK) timing hid an
	// allocation regression — the verdict is REGRESS either way, the flag
	// only drives rendering.
	AllocRegressed bool
}

// Result is a full snapshot comparison.
type Result struct {
	Rows []Row
	// Compared counts rows that went through the timing check.
	Compared int
	// Regressions counts fatal rows (REGRESS + BROKEN).
	Regressions int
}

// OK reports whether the gate passes.
func (r *Result) OK() bool { return r.Regressions == 0 }

// Compare classifies every experiment of both snapshots. Rows follow the
// current snapshot's order; baseline-only rows trail in baseline order.
func Compare(base, cur *Snapshot, opts Options) *Result {
	baseByID := make(map[string]Experiment, len(base.Experiments))
	for _, e := range base.Experiments {
		baseByID[e.ID] = e
	}
	res := &Result{}
	seen := make(map[string]bool, len(cur.Experiments))
	for _, c := range cur.Experiments {
		seen[c.ID] = true
		row := Row{ID: c.ID, Title: c.Title, Cur: time.Duration(c.ElapsedNS)}
		b, ok := baseByID[c.ID]
		if !ok {
			row.Verdict = VerdictNew
			res.Rows = append(res.Rows, row)
			continue
		}
		row.Base = time.Duration(b.ElapsedNS)
		row.BaseAllocs, row.CurAllocs = b.AllocsPerOp, c.AllocsPerOp
		switch {
		case b.OK && !c.OK:
			row.Verdict = VerdictBroken
			res.Regressions++
		case row.Base < opts.MinBase:
			row.Verdict = VerdictSkipped
		default:
			res.Compared++
			row.Ratio = float64(c.ElapsedNS) / float64(b.ElapsedNS)
			row.Verdict = VerdictOK
			if row.Ratio > opts.MaxRatio {
				row.Verdict = VerdictRegressed
				res.Regressions++
			}
		}
		// The allocation gate runs independently of the timing verdict (a
		// run can keep its speed while its allocation profile explodes) but
		// shares the timing noise floor's spirit via MinAllocs.
		if row.Verdict != VerdictBroken &&
			opts.MaxAllocRatio > 0 && b.AllocsPerOp >= opts.MinAllocs && b.AllocsPerOp > 0 {
			row.AllocRatio = float64(c.AllocsPerOp) / float64(b.AllocsPerOp)
			if row.AllocRatio > opts.MaxAllocRatio {
				row.AllocRegressed = true
				if row.Verdict != VerdictRegressed {
					row.Verdict = VerdictRegressed
					res.Regressions++
				}
			}
		}
		res.Rows = append(res.Rows, row)
	}
	for _, b := range base.Experiments {
		if !seen[b.ID] {
			res.Rows = append(res.Rows, Row{ID: b.ID, Title: b.Title,
				Verdict: VerdictGone, Base: time.Duration(b.ElapsedNS)})
		}
	}
	return res
}

// Render writes the comparison in benchdiff's one-line-per-experiment
// text format, ending with the summary line. Skipped rows are omitted.
func (r *Result) Render(w io.Writer, opts Options) {
	for _, row := range r.Rows {
		switch row.Verdict {
		case VerdictSkipped:
		case VerdictNew:
			fmt.Fprintf(w, "new     %-6s %s (%v) — not in baseline, skipped\n",
				row.ID, row.Title, row.Cur.Round(time.Millisecond))
		case VerdictGone:
			fmt.Fprintf(w, "gone    %-6s %s — in baseline but not in current run\n",
				row.ID, row.Title)
		case VerdictBroken:
			fmt.Fprintf(w, "BROKEN  %-6s %s — ok flipped to false\n", row.ID, row.Title)
		default:
			fmt.Fprintf(w, "%-7s %-6s %s: %v -> %v (%.2fx)", string(row.Verdict),
				row.ID, row.Title, row.Base.Round(time.Millisecond),
				row.Cur.Round(time.Millisecond), row.Ratio)
			if row.AllocRegressed {
				fmt.Fprintf(w, " — allocs/op %d -> %d (%.2fx)", row.BaseAllocs, row.CurAllocs, row.AllocRatio)
			}
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintf(w, "benchdiff: %d experiments compared (baseline floor %v), %d regression(s) at max-ratio %.2f\n",
		r.Compared, opts.MinBase, r.Regressions, opts.MaxRatio)
}
