package benchcmp

import (
	"strings"
	"testing"
	"time"
)

func snap(exps ...Experiment) *Snapshot { return &Snapshot{OK: true, Experiments: exps} }

func exp(id string, ok bool, elapsed time.Duration) Experiment {
	return Experiment{ID: id, Title: id + " title", OK: ok, ElapsedNS: int64(elapsed)}
}

var opts = Options{MaxRatio: 1.25, MinBase: 100 * time.Millisecond}

func verdictOf(t *testing.T, res *Result, id string) Row {
	t.Helper()
	for _, row := range res.Rows {
		if row.ID == id {
			return row
		}
	}
	t.Fatalf("no row for %s in %+v", id, res.Rows)
	return Row{}
}

func TestRatioExactlyAtMaxPasses(t *testing.T) {
	base := snap(exp("F1", true, 200*time.Millisecond))
	cur := snap(exp("F1", true, 250*time.Millisecond)) // exactly 1.25x
	res := Compare(base, cur, opts)
	if row := verdictOf(t, res, "F1"); row.Verdict != VerdictOK {
		t.Fatalf("ratio exactly at max-ratio = %s, want ok (gate is strict-greater)", row.Verdict)
	}
	if !res.OK() {
		t.Fatal("gate failed on a boundary ratio")
	}
}

func TestRatioJustOverMaxRegresses(t *testing.T) {
	base := snap(exp("F1", true, 200*time.Millisecond))
	cur := snap(exp("F1", true, 251*time.Millisecond))
	res := Compare(base, cur, opts)
	if row := verdictOf(t, res, "F1"); row.Verdict != VerdictRegressed {
		t.Fatalf("1.255x = %s, want REGRESS", row.Verdict)
	}
	if res.OK() || res.Regressions != 1 {
		t.Fatalf("Regressions = %d, want 1", res.Regressions)
	}
}

func TestOKFlipIsBrokenEvenBelowNoiseFloor(t *testing.T) {
	base := snap(exp("T1", true, 5*time.Millisecond)) // below MinBase
	cur := snap(exp("T1", false, 4*time.Millisecond))
	res := Compare(base, cur, opts)
	if row := verdictOf(t, res, "T1"); row.Verdict != VerdictBroken {
		t.Fatalf("ok-flip below floor = %s, want BROKEN", row.Verdict)
	}
	if res.OK() {
		t.Fatal("correctness flip did not fail the gate")
	}
}

func TestBelowNoiseFloorSkipsTimingCheck(t *testing.T) {
	base := snap(exp("F2", true, 10*time.Millisecond))
	cur := snap(exp("F2", true, 90*time.Millisecond)) // 9x, but base is noise
	res := Compare(base, cur, opts)
	if row := verdictOf(t, res, "F2"); row.Verdict != VerdictSkipped {
		t.Fatalf("sub-floor baseline = %s, want skip", row.Verdict)
	}
	if res.Compared != 0 || !res.OK() {
		t.Fatalf("Compared = %d, OK = %v; noise floor not honored", res.Compared, res.OK())
	}
}

func TestNewAndGoneAreNotFatal(t *testing.T) {
	base := snap(exp("OLD", true, 300*time.Millisecond))
	cur := snap(exp("NEW", true, 900*time.Millisecond))
	res := Compare(base, cur, opts)
	if row := verdictOf(t, res, "NEW"); row.Verdict != VerdictNew {
		t.Fatalf("current-only = %s, want new", row.Verdict)
	}
	if row := verdictOf(t, res, "OLD"); row.Verdict != VerdictGone {
		t.Fatalf("baseline-only = %s, want gone", row.Verdict)
	}
	if !res.OK() || res.Compared != 0 {
		t.Fatalf("adding/retiring a benchmark broke the gate: %+v", res)
	}
}

func TestRowOrderFollowsCurrentThenGone(t *testing.T) {
	base := snap(exp("A", true, 200*time.Millisecond), exp("Z", true, 200*time.Millisecond))
	cur := snap(exp("B", true, 200*time.Millisecond), exp("A", true, 200*time.Millisecond))
	res := Compare(base, cur, opts)
	got := make([]string, len(res.Rows))
	for i, row := range res.Rows {
		got[i] = row.ID
	}
	want := "B A Z"
	if strings.Join(got, " ") != want {
		t.Fatalf("row order = %v, want %s", got, want)
	}
}

// allocExp is exp with an allocation profile attached.
func allocExp(id string, ok bool, elapsed time.Duration, allocs int64) Experiment {
	e := exp(id, ok, elapsed)
	e.AllocsPerOp = allocs
	e.BytesPerOp = allocs * 64
	return e
}

var allocOpts = Options{MaxRatio: 1.25, MinBase: 100 * time.Millisecond,
	MaxAllocRatio: 2.0, MinAllocs: 10_000}

func TestAllocRegressionFailsDespiteOKTiming(t *testing.T) {
	base := snap(allocExp("S3", true, 200*time.Millisecond, 50_000))
	cur := snap(allocExp("S3", true, 200*time.Millisecond, 150_000)) // 3x allocs, flat timing
	res := Compare(base, cur, allocOpts)
	row := verdictOf(t, res, "S3")
	if row.Verdict != VerdictRegressed || !row.AllocRegressed {
		t.Fatalf("3x allocs at flat timing = %s (allocRegressed=%v), want REGRESS", row.Verdict, row.AllocRegressed)
	}
	if row.AllocRatio != 3.0 {
		t.Fatalf("AllocRatio = %v, want 3.0", row.AllocRatio)
	}
	if res.OK() || res.Regressions != 1 {
		t.Fatalf("Regressions = %d, want 1 (not double-counted)", res.Regressions)
	}
}

func TestAllocRatioExactlyAtMaxPasses(t *testing.T) {
	base := snap(allocExp("S3", true, 200*time.Millisecond, 50_000))
	cur := snap(allocExp("S3", true, 200*time.Millisecond, 100_000)) // exactly 2.0x
	res := Compare(base, cur, allocOpts)
	if row := verdictOf(t, res, "S3"); row.Verdict != VerdictOK || row.AllocRegressed {
		t.Fatalf("boundary alloc ratio = %s, want ok (gate is strict-greater)", row.Verdict)
	}
}

func TestAllocGateHonorsNoiseFloorAndDisable(t *testing.T) {
	// Below MinAllocs: a tiny experiment tripling a handful of allocations
	// is runtime noise, not a regression.
	base := snap(allocExp("F1", true, 200*time.Millisecond, 500))
	cur := snap(allocExp("F1", true, 200*time.Millisecond, 5_000))
	if res := Compare(base, cur, allocOpts); !res.OK() {
		t.Fatal("sub-floor alloc growth failed the gate")
	}
	// MaxAllocRatio 0 (or an old baseline without alloc fields, which
	// decodes to 0 allocs/op) disables the gate entirely.
	base = snap(allocExp("F1", true, 200*time.Millisecond, 50_000))
	cur = snap(allocExp("F1", true, 200*time.Millisecond, 500_000))
	if res := Compare(base, cur, opts); !res.OK() {
		t.Fatal("alloc gate fired with MaxAllocRatio 0")
	}
	oldBase := snap(exp("F1", true, 200*time.Millisecond)) // no alloc fields
	if res := Compare(oldBase, cur, allocOpts); !res.OK() {
		t.Fatal("alloc gate fired against a pre-allocation baseline")
	}
}

func TestAllocAndTimingRegressionCountsOnce(t *testing.T) {
	base := snap(allocExp("S3", true, 200*time.Millisecond, 50_000))
	cur := snap(allocExp("S3", true, 600*time.Millisecond, 500_000))
	res := Compare(base, cur, allocOpts)
	if res.Regressions != 1 {
		t.Fatalf("Regressions = %d, want 1 for a single doubly-regressed row", res.Regressions)
	}
}

func TestRenderAllocRegression(t *testing.T) {
	base := snap(allocExp("S3", true, 200*time.Millisecond, 50_000))
	cur := snap(allocExp("S3", true, 200*time.Millisecond, 150_000))
	res := Compare(base, cur, allocOpts)
	var b strings.Builder
	res.Render(&b, allocOpts)
	out := b.String()
	for _, want := range []string{"REGRESS S3", "allocs/op 50000 -> 150000 (3.00x)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestParseRejectsEmptySnapshot(t *testing.T) {
	if _, err := Parse([]byte(`{"ok":true,"experiments":[]}`), "empty.json"); err == nil {
		t.Fatal("empty snapshot accepted (a crashed producer would pass the gate)")
	}
	if _, err := Parse([]byte(`not json`), "bad.json"); err == nil {
		t.Fatal("malformed snapshot accepted")
	}
}

func TestRenderFormats(t *testing.T) {
	base := snap(
		exp("F1", true, 200*time.Millisecond),
		exp("F3", true, 200*time.Millisecond),
		exp("GONE", true, 1*time.Second),
	)
	cur := snap(
		exp("F1", true, 400*time.Millisecond),
		exp("F3", false, 100*time.Millisecond),
		exp("NEW", true, 50*time.Millisecond),
	)
	res := Compare(base, cur, opts)
	var b strings.Builder
	res.Render(&b, opts)
	out := b.String()
	for _, want := range []string{
		"REGRESS F1",
		"(2.00x)",
		"BROKEN  F3",
		"ok flipped to false",
		"new     NEW",
		"gone    GONE",
		"1 experiments compared",
		"2 regression(s) at max-ratio 1.25",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}
