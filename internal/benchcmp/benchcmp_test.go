package benchcmp

import (
	"strings"
	"testing"
	"time"
)

func snap(exps ...Experiment) *Snapshot { return &Snapshot{OK: true, Experiments: exps} }

func exp(id string, ok bool, elapsed time.Duration) Experiment {
	return Experiment{ID: id, Title: id + " title", OK: ok, ElapsedNS: int64(elapsed)}
}

var opts = Options{MaxRatio: 1.25, MinBase: 100 * time.Millisecond}

func verdictOf(t *testing.T, res *Result, id string) Row {
	t.Helper()
	for _, row := range res.Rows {
		if row.ID == id {
			return row
		}
	}
	t.Fatalf("no row for %s in %+v", id, res.Rows)
	return Row{}
}

func TestRatioExactlyAtMaxPasses(t *testing.T) {
	base := snap(exp("F1", true, 200*time.Millisecond))
	cur := snap(exp("F1", true, 250*time.Millisecond)) // exactly 1.25x
	res := Compare(base, cur, opts)
	if row := verdictOf(t, res, "F1"); row.Verdict != VerdictOK {
		t.Fatalf("ratio exactly at max-ratio = %s, want ok (gate is strict-greater)", row.Verdict)
	}
	if !res.OK() {
		t.Fatal("gate failed on a boundary ratio")
	}
}

func TestRatioJustOverMaxRegresses(t *testing.T) {
	base := snap(exp("F1", true, 200*time.Millisecond))
	cur := snap(exp("F1", true, 251*time.Millisecond))
	res := Compare(base, cur, opts)
	if row := verdictOf(t, res, "F1"); row.Verdict != VerdictRegressed {
		t.Fatalf("1.255x = %s, want REGRESS", row.Verdict)
	}
	if res.OK() || res.Regressions != 1 {
		t.Fatalf("Regressions = %d, want 1", res.Regressions)
	}
}

func TestOKFlipIsBrokenEvenBelowNoiseFloor(t *testing.T) {
	base := snap(exp("T1", true, 5*time.Millisecond)) // below MinBase
	cur := snap(exp("T1", false, 4*time.Millisecond))
	res := Compare(base, cur, opts)
	if row := verdictOf(t, res, "T1"); row.Verdict != VerdictBroken {
		t.Fatalf("ok-flip below floor = %s, want BROKEN", row.Verdict)
	}
	if res.OK() {
		t.Fatal("correctness flip did not fail the gate")
	}
}

func TestBelowNoiseFloorSkipsTimingCheck(t *testing.T) {
	base := snap(exp("F2", true, 10*time.Millisecond))
	cur := snap(exp("F2", true, 90*time.Millisecond)) // 9x, but base is noise
	res := Compare(base, cur, opts)
	if row := verdictOf(t, res, "F2"); row.Verdict != VerdictSkipped {
		t.Fatalf("sub-floor baseline = %s, want skip", row.Verdict)
	}
	if res.Compared != 0 || !res.OK() {
		t.Fatalf("Compared = %d, OK = %v; noise floor not honored", res.Compared, res.OK())
	}
}

func TestNewAndGoneAreNotFatal(t *testing.T) {
	base := snap(exp("OLD", true, 300*time.Millisecond))
	cur := snap(exp("NEW", true, 900*time.Millisecond))
	res := Compare(base, cur, opts)
	if row := verdictOf(t, res, "NEW"); row.Verdict != VerdictNew {
		t.Fatalf("current-only = %s, want new", row.Verdict)
	}
	if row := verdictOf(t, res, "OLD"); row.Verdict != VerdictGone {
		t.Fatalf("baseline-only = %s, want gone", row.Verdict)
	}
	if !res.OK() || res.Compared != 0 {
		t.Fatalf("adding/retiring a benchmark broke the gate: %+v", res)
	}
}

func TestRowOrderFollowsCurrentThenGone(t *testing.T) {
	base := snap(exp("A", true, 200*time.Millisecond), exp("Z", true, 200*time.Millisecond))
	cur := snap(exp("B", true, 200*time.Millisecond), exp("A", true, 200*time.Millisecond))
	res := Compare(base, cur, opts)
	got := make([]string, len(res.Rows))
	for i, row := range res.Rows {
		got[i] = row.ID
	}
	want := "B A Z"
	if strings.Join(got, " ") != want {
		t.Fatalf("row order = %v, want %s", got, want)
	}
}

func TestParseRejectsEmptySnapshot(t *testing.T) {
	if _, err := Parse([]byte(`{"ok":true,"experiments":[]}`), "empty.json"); err == nil {
		t.Fatal("empty snapshot accepted (a crashed producer would pass the gate)")
	}
	if _, err := Parse([]byte(`not json`), "bad.json"); err == nil {
		t.Fatal("malformed snapshot accepted")
	}
}

func TestRenderFormats(t *testing.T) {
	base := snap(
		exp("F1", true, 200*time.Millisecond),
		exp("F3", true, 200*time.Millisecond),
		exp("GONE", true, 1*time.Second),
	)
	cur := snap(
		exp("F1", true, 400*time.Millisecond),
		exp("F3", false, 100*time.Millisecond),
		exp("NEW", true, 50*time.Millisecond),
	)
	res := Compare(base, cur, opts)
	var b strings.Builder
	res.Render(&b, opts)
	out := b.String()
	for _, want := range []string{
		"REGRESS F1",
		"(2.00x)",
		"BROKEN  F3",
		"ok flipped to false",
		"new     NEW",
		"gone    GONE",
		"1 experiments compared",
		"2 regression(s) at max-ratio 1.25",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}
