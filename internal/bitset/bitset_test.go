package bitset

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewAndBasicOps(t *testing.T) {
	s := New(130)
	if !s.Empty() {
		t.Fatal("new set not empty")
	}
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		s.Add(i)
		if !s.Contains(i) {
			t.Fatalf("Contains(%d) = false after Add", i)
		}
	}
	if got := s.Count(); got != 8 {
		t.Fatalf("Count = %d, want 8", got)
	}
	s.Remove(64)
	if s.Contains(64) {
		t.Fatal("Contains(64) after Remove")
	}
	if got := s.Count(); got != 7 {
		t.Fatalf("Count = %d, want 7", got)
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestFlip(t *testing.T) {
	s := New(64)
	s.Flip(10)
	if !s.Contains(10) {
		t.Fatal("flip on")
	}
	s.Flip(10)
	if s.Contains(10) {
		t.Fatal("flip off")
	}
}

func TestContainsBeyondCapacity(t *testing.T) {
	s := New(10)
	if s.Contains(1000) {
		t.Fatal("Contains beyond capacity should be false")
	}
}

func TestFromSliceAndSlice(t *testing.T) {
	in := []int{5, 1, 99, 42}
	s := FromSlice(100, in)
	got := s.Slice()
	want := []int{1, 5, 42, 99}
	if len(got) != len(want) {
		t.Fatalf("Slice = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Slice = %v, want %v", got, want)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	s := FromSlice(64, []int{1, 2, 3})
	c := s.Clone()
	c.Add(10)
	if s.Contains(10) {
		t.Fatal("Clone is not independent")
	}
	if !c.Contains(1) || !c.Contains(2) || !c.Contains(3) {
		t.Fatal("Clone lost elements")
	}
}

func TestCopyFrom(t *testing.T) {
	a := FromSlice(64, []int{1})
	b := FromSlice(64, []int{2, 3})
	a.CopyFrom(b)
	if !a.Equal(b) {
		t.Fatal("CopyFrom mismatch")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("CopyFrom capacity mismatch did not panic")
			}
		}()
		a.CopyFrom(New(128))
	}()
}

func TestSetAlgebra(t *testing.T) {
	a := FromSlice(128, []int{1, 2, 3, 70})
	b := FromSlice(128, []int{2, 3, 4, 100})

	u := a.Clone()
	u.UnionWith(b)
	if got, want := u.Count(), 6; got != want {
		t.Fatalf("union count = %d, want %d", got, want)
	}

	i := a.Clone()
	i.IntersectWith(b)
	if got := i.Slice(); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("intersect = %v, want [2 3]", got)
	}

	d := a.Clone()
	d.DifferenceWith(b)
	if got := d.Slice(); len(got) != 2 || got[0] != 1 || got[1] != 70 {
		t.Fatalf("difference = %v, want [1 70]", got)
	}

	if !a.Intersects(b) {
		t.Fatal("Intersects false")
	}
	if got := a.IntersectionCount(b); got != 2 {
		t.Fatalf("IntersectionCount = %d, want 2", got)
	}
	if a.Intersects(FromSlice(128, []int{9})) {
		t.Fatal("Intersects true for disjoint sets")
	}
	if !i.SubsetOf(a) || !i.SubsetOf(b) {
		t.Fatal("SubsetOf false for intersection")
	}
	if a.SubsetOf(b) {
		t.Fatal("SubsetOf true for non-subset")
	}
}

func TestAlgebraMismatchedCapacities(t *testing.T) {
	small := FromSlice(64, []int{1, 63})
	big := FromSlice(256, []int{1, 200})

	i := big.Clone()
	i.IntersectWith(small)
	if got := i.Slice(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("intersect = %v, want [1]", got)
	}
	d := small.Clone()
	d.DifferenceWith(big)
	if got := d.Slice(); len(got) != 1 || got[0] != 63 {
		t.Fatalf("difference = %v, want [63]", got)
	}
	if !small.SubsetOf(big.Clone()) && small.SubsetOf(big) {
		t.Fatal("inconsistent SubsetOf")
	}
	if big.SubsetOf(small) {
		t.Fatal("big subset of small")
	}
	if !small.Intersects(big) {
		t.Fatal("Intersects across capacities")
	}
}

func TestEqualMixedCapacity(t *testing.T) {
	a := FromSlice(64, []int{1, 2})
	b := FromSlice(256, []int{1, 2})
	if !a.Equal(b) || !b.Equal(a) {
		t.Fatal("Equal should ignore trailing zero words")
	}
	b.Add(200)
	if a.Equal(b) || b.Equal(a) {
		t.Fatal("Equal should detect high-bit difference")
	}
}

func TestMinAndNextAfter(t *testing.T) {
	s := New(256)
	if s.Min() != -1 {
		t.Fatal("Min of empty set should be -1")
	}
	s.Add(70)
	s.Add(5)
	s.Add(200)
	if got := s.Min(); got != 5 {
		t.Fatalf("Min = %d, want 5", got)
	}
	seq := []int{}
	for i := s.Min(); i != -1; i = s.NextAfter(i) {
		seq = append(seq, i)
	}
	want := []int{5, 70, 200}
	if len(seq) != 3 || seq[0] != want[0] || seq[1] != want[1] || seq[2] != want[2] {
		t.Fatalf("iteration = %v, want %v", seq, want)
	}
	if got := s.NextAfter(-5); got != 5 {
		t.Fatalf("NextAfter(-5) = %d, want 5", got)
	}
	if got := s.NextAfter(255); got != -1 {
		t.Fatalf("NextAfter(255) = %d, want -1", got)
	}
}

func TestForEachEarlyStop(t *testing.T) {
	s := FromSlice(64, []int{1, 2, 3, 4})
	n := 0
	s.ForEach(func(int) bool {
		n++
		return n < 2
	})
	if n != 2 {
		t.Fatalf("ForEach visited %d, want 2", n)
	}
}

func TestAppendTo(t *testing.T) {
	s := FromSlice(64, []int{3, 1})
	buf := []int{99}
	buf = s.AppendTo(buf)
	if len(buf) != 3 || buf[0] != 99 || buf[1] != 1 || buf[2] != 3 {
		t.Fatalf("AppendTo = %v", buf)
	}
}

func TestString(t *testing.T) {
	s := FromSlice(64, []int{2, 5})
	if got := s.String(); got != "{2, 5}" {
		t.Fatalf("String = %q", got)
	}
	if got := New(0).String(); got != "{}" {
		t.Fatalf("empty String = %q", got)
	}
}

func TestClear(t *testing.T) {
	s := FromSlice(128, []int{1, 100})
	s.Clear()
	if !s.Empty() || s.Count() != 0 {
		t.Fatal("Clear did not empty set")
	}
	if s.Len() != 128 {
		t.Fatalf("Len after Clear = %d, want 128", s.Len())
	}
}

// Property: a Set behaves like a map[int]bool reference model.
func TestQuickModelEquivalence(t *testing.T) {
	f := func(ops []uint16) bool {
		const n = 512
		s := New(n)
		model := map[int]bool{}
		for _, op := range ops {
			v := int(op) % n
			switch op % 3 {
			case 0:
				s.Add(v)
				model[v] = true
			case 1:
				s.Remove(v)
				delete(model, v)
			case 2:
				s.Flip(v)
				if model[v] {
					delete(model, v)
				} else {
					model[v] = true
				}
			}
		}
		if s.Count() != len(model) {
			return false
		}
		keys := make([]int, 0, len(model))
		for k := range model {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		got := s.Slice()
		if len(got) != len(keys) {
			return false
		}
		for i := range keys {
			if got[i] != keys[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: De Morgan-ish identity |A∪B| = |A| + |B| - |A∩B|.
func TestQuickInclusionExclusion(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		const n = 300
		a, b := New(n), New(n)
		for i := 0; i < 80; i++ {
			a.Add(rng.Intn(n))
			b.Add(rng.Intn(n))
		}
		u := a.Clone()
		u.UnionWith(b)
		if u.Count() != a.Count()+b.Count()-a.IntersectionCount(b) {
			t.Fatalf("inclusion-exclusion violated: |A|=%d |B|=%d |A∩B|=%d |A∪B|=%d",
				a.Count(), b.Count(), a.IntersectionCount(b), u.Count())
		}
	}
}

func BenchmarkAddContains(b *testing.B) {
	s := New(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v := i % 4096
		s.Add(v)
		if !s.Contains(v) {
			b.Fatal("missing")
		}
	}
}

func BenchmarkForEach(b *testing.B) {
	s := New(4096)
	for i := 0; i < 4096; i += 3 {
		s.Add(i)
	}
	b.ReportAllocs()
	sum := 0
	for i := 0; i < b.N; i++ {
		s.ForEach(func(v int) bool {
			sum += v
			return true
		})
	}
	_ = sum
}
