// Package bitset provides dense bit sets over small integer universes.
//
// The package is the workhorse for fault sets, visited-node sets during
// Hamiltonian-path search, and adjacency rows: all of the hot loops in the
// embedding solver and the exhaustive verifier operate on values of type
// Set. Sets are plain slices of uint64 words, so they can be copied with
// Clone, reused across iterations, and compared cheaply.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a dense bit set. The zero value is an empty set of capacity 0;
// use New to create a set able to hold values in [0, n).
type Set []uint64

// New returns a Set able to hold values in [0, n).
func New(n int) Set {
	if n < 0 {
		panic("bitset: negative capacity")
	}
	return make(Set, (n+wordBits-1)/wordBits)
}

// FromSlice returns a set of capacity n containing the given elements.
func FromSlice(n int, elems []int) Set {
	s := New(n)
	for _, e := range elems {
		s.Add(e)
	}
	return s
}

// Len returns the capacity of the set in bits (a multiple of 64).
func (s Set) Len() int { return len(s) * wordBits }

// Add inserts i into the set.
func (s Set) Add(i int) { s[i/wordBits] |= 1 << (uint(i) % wordBits) }

// Remove deletes i from the set.
func (s Set) Remove(i int) { s[i/wordBits] &^= 1 << (uint(i) % wordBits) }

// Flip toggles membership of i.
func (s Set) Flip(i int) { s[i/wordBits] ^= 1 << (uint(i) % wordBits) }

// Contains reports whether i is in the set.
func (s Set) Contains(i int) bool {
	w := i / wordBits
	if w >= len(s) {
		return false
	}
	return s[w]&(1<<(uint(i)%wordBits)) != 0
}

// Count returns the number of elements in the set.
func (s Set) Count() int {
	c := 0
	for _, w := range s {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether the set has no elements.
func (s Set) Empty() bool {
	for _, w := range s {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clear removes all elements, keeping capacity.
func (s Set) Clear() {
	for i := range s {
		s[i] = 0
	}
}

// Clone returns an independent copy of the set.
func (s Set) Clone() Set {
	c := make(Set, len(s))
	copy(c, s)
	return c
}

// CopyFrom overwrites s with the contents of o. The sets must have the
// same capacity.
func (s Set) CopyFrom(o Set) {
	if len(s) != len(o) {
		panic("bitset: CopyFrom capacity mismatch")
	}
	copy(s, o)
}

// UnionWith adds every element of o to s.
func (s Set) UnionWith(o Set) {
	for i, w := range o {
		s[i] |= w
	}
}

// IntersectWith removes from s every element not in o.
func (s Set) IntersectWith(o Set) {
	for i := range s {
		if i < len(o) {
			s[i] &= o[i]
		} else {
			s[i] = 0
		}
	}
}

// DifferenceWith removes every element of o from s.
func (s Set) DifferenceWith(o Set) {
	for i := range o {
		if i < len(s) {
			s[i] &^= o[i]
		}
	}
}

// Intersects reports whether s and o share at least one element.
func (s Set) Intersects(o Set) bool {
	n := len(s)
	if len(o) < n {
		n = len(o)
	}
	for i := 0; i < n; i++ {
		if s[i]&o[i] != 0 {
			return true
		}
	}
	return false
}

// IntersectionCount returns |s ∩ o|.
func (s Set) IntersectionCount(o Set) int {
	n := len(s)
	if len(o) < n {
		n = len(o)
	}
	c := 0
	for i := 0; i < n; i++ {
		c += bits.OnesCount64(s[i] & o[i])
	}
	return c
}

// SubsetOf reports whether every element of s is in o.
func (s Set) SubsetOf(o Set) bool {
	for i, w := range s {
		ow := uint64(0)
		if i < len(o) {
			ow = o[i]
		}
		if w&^ow != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether s and o contain exactly the same elements.
func (s Set) Equal(o Set) bool {
	n := len(s)
	if len(o) > n {
		n = len(o)
	}
	for i := 0; i < n; i++ {
		var a, b uint64
		if i < len(s) {
			a = s[i]
		}
		if i < len(o) {
			b = o[i]
		}
		if a != b {
			return false
		}
	}
	return true
}

// Min returns the smallest element, or -1 if the set is empty.
func (s Set) Min() int {
	for i, w := range s {
		if w != 0 {
			return i*wordBits + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// NextAfter returns the smallest element strictly greater than i,
// or -1 if none exists.
func (s Set) NextAfter(i int) int {
	i++
	if i < 0 {
		i = 0
	}
	w := i / wordBits
	if w >= len(s) {
		return -1
	}
	cur := s[w] >> (uint(i) % wordBits)
	if cur != 0 {
		return i + bits.TrailingZeros64(cur)
	}
	for w++; w < len(s); w++ {
		if s[w] != 0 {
			return w*wordBits + bits.TrailingZeros64(s[w])
		}
	}
	return -1
}

// ForEach calls fn for every element in ascending order. If fn returns
// false, iteration stops.
func (s Set) ForEach(fn func(i int) bool) {
	for wi, w := range s {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + b) {
				return
			}
			w &= w - 1
		}
	}
}

// Slice returns the elements of the set in ascending order.
func (s Set) Slice() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) bool {
		out = append(out, i)
		return true
	})
	return out
}

// AppendTo appends the elements of the set in ascending order to dst and
// returns the extended slice. It allows callers to reuse buffers across
// hot-loop iterations.
func (s Set) AppendTo(dst []int) []int {
	s.ForEach(func(i int) bool {
		dst = append(dst, i)
		return true
	})
	return dst
}

// String renders the set as "{a, b, c}".
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) bool {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
		return true
	})
	b.WriteByte('}')
	return b.String()
}
