// Package locality analyzes how physically "short" a pipeline embedding
// is. The paper targets VLSI processor arrays ([18], §1): a circulant of
// small offsets wires cheaply, and a pipeline that mostly follows
// unit-distance ring edges keeps signal paths short even after
// reconfiguration. Profile classifies every hop of a pipeline by the kind
// of edge it uses and, for ring-to-ring hops, by the circulant offset.
package locality

import (
	"fmt"
	"sort"
	"strings"

	"gdpn/internal/construct"
	"gdpn/internal/graph"
)

// HopKind classifies one pipeline hop.
type HopKind int

const (
	// Terminal hops connect a terminal to its border processor.
	Terminal HopKind = iota
	// Clique hops stay inside the I or O clique or cross into S.
	Clique
	// Ring hops connect two circulant nodes; their offset is recorded.
	Ring
)

// Profile is the locality breakdown of one pipeline.
type Profile struct {
	// Hops is the total number of pipeline edges.
	Hops int
	// TerminalHops and CliqueHops count non-ring edges.
	TerminalHops, CliqueHops int
	// RingHops counts circulant edges; OffsetHistogram maps each circulant
	// offset (1..⌊m/2⌋) to its use count.
	RingHops        int
	OffsetHistogram map[int]int
}

// UnitFraction returns the fraction of ring hops that use the unit offset
// (physically adjacent nodes).
func (p *Profile) UnitFraction() float64 {
	if p.RingHops == 0 {
		return 0
	}
	return float64(p.OffsetHistogram[1]) / float64(p.RingHops)
}

// MaxOffset returns the largest circulant offset the pipeline uses.
func (p *Profile) MaxOffset() int {
	max := 0
	for off := range p.OffsetHistogram {
		if off > max {
			max = off
		}
	}
	return max
}

// String renders the profile compactly.
func (p *Profile) String() string {
	offs := make([]int, 0, len(p.OffsetHistogram))
	for o := range p.OffsetHistogram {
		offs = append(offs, o)
	}
	sort.Ints(offs)
	var b strings.Builder
	fmt.Fprintf(&b, "%d hops (%d terminal, %d clique, %d ring;", p.Hops, p.TerminalHops, p.CliqueHops, p.RingHops)
	for _, o := range offs {
		fmt.Fprintf(&b, " ±%d×%d", o, p.OffsetHistogram[o])
	}
	b.WriteString(")")
	return b.String()
}

// Analyze profiles a pipeline over an asymptotic-construction layout.
func Analyze(g *graph.Graph, lay *construct.Layout, path graph.Path) (*Profile, error) {
	if lay == nil {
		return nil, fmt.Errorf("locality: layout required")
	}
	// Ring position by node id.
	pos := make(map[int]int, lay.M)
	for j, id := range lay.C {
		pos[id] = j
	}
	p := &Profile{OffsetHistogram: map[int]int{}}
	for i := 1; i < len(path); i++ {
		u, v := path[i-1], path[i]
		if !g.HasEdge(u, v) {
			return nil, fmt.Errorf("locality: hop (%d,%d) is not an edge", u, v)
		}
		p.Hops++
		if g.Kind(u) != graph.Processor || g.Kind(v) != graph.Processor {
			p.TerminalHops++
			continue
		}
		pu, okU := pos[u]
		pv, okV := pos[v]
		if !okU || !okV {
			p.CliqueHops++ // at least one endpoint is an I or O node
			continue
		}
		d := pu - pv
		if d < 0 {
			d = -d
		}
		if lay.M-d < d {
			d = lay.M - d
		}
		p.RingHops++
		p.OffsetHistogram[d]++
	}
	return p, nil
}
