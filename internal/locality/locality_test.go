package locality_test

import (
	"math/rand"
	"strings"
	"testing"

	"gdpn/internal/bitset"
	"gdpn/internal/construct"
	"gdpn/internal/embed"
	"gdpn/internal/locality"
)

func TestAnalyzeFaultFreePipeline(t *testing.T) {
	g, lay, err := construct.Asymptotic(40, 4)
	if err != nil {
		t.Fatal(err)
	}
	path, ok := embed.FindPipeline(g, nil)
	if !ok {
		t.Fatal("no pipeline")
	}
	p, err := locality.Analyze(g, lay, path)
	if err != nil {
		t.Fatal(err)
	}
	if p.Hops != len(path)-1 {
		t.Fatalf("hops %d, want %d", p.Hops, len(path)-1)
	}
	// Exactly two terminal hops (the ends).
	if p.TerminalHops != 2 {
		t.Fatalf("terminal hops %d, want 2", p.TerminalHops)
	}
	if p.TerminalHops+p.CliqueHops+p.RingHops != p.Hops {
		t.Fatal("hop kinds do not partition the pipeline")
	}
	// Fault-free pipelines sweep the ring: the unit offset dominates.
	if p.UnitFraction() < 0.7 {
		t.Fatalf("unit fraction %.2f; expected a mostly-unit sweep (%s)", p.UnitFraction(), p)
	}
	// No hop can exceed the largest circulant offset.
	if p.MaxOffset() > lay.P+1 && !(lay.HasBisector && p.MaxOffset() >= lay.Bisector) {
		t.Fatalf("offset %d beyond construction offsets", p.MaxOffset())
	}
	if !strings.Contains(p.String(), "ring") {
		t.Fatalf("String = %q", p.String())
	}
}

func TestAnalyzeUnderFaults(t *testing.T) {
	g, lay, err := construct.Asymptotic(60, 6)
	if err != nil {
		t.Fatal(err)
	}
	solver := embed.NewSolver(g, embed.Options{Layout: lay})
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		faults := bitset.New(g.NumNodes())
		for faults.Count() < 6 {
			faults.Add(rng.Intn(g.NumNodes()))
		}
		r := solver.Find(faults)
		if !r.Found {
			t.Fatal("no pipeline")
		}
		p, err := locality.Analyze(g, lay, r.Pipeline)
		if err != nil {
			t.Fatal(err)
		}
		// Jumps must stay within the construction's offsets.
		if p.MaxOffset() > lay.P+1 {
			t.Fatalf("trial %d: offset %d > p+1 = %d (%s)", trial, p.MaxOffset(), lay.P+1, p)
		}
		// Even under k faults the pipeline stays local: sweeps use unit
		// hops, zigzag coverage of dead-end pockets uses ±2 strides, so
		// together they must dominate.
		shortHops := p.OffsetHistogram[1] + p.OffsetHistogram[2]
		if p.RingHops > 0 && float64(shortHops)/float64(p.RingHops) < 0.5 {
			t.Fatalf("trial %d: short-hop fraction %.2f (%s)",
				trial, float64(shortHops)/float64(p.RingHops), p)
		}
	}
}

func TestAnalyzeErrors(t *testing.T) {
	g, lay, err := construct.Asymptotic(22, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := locality.Analyze(g, nil, nil); err == nil {
		t.Fatal("nil layout accepted")
	}
	if _, err := locality.Analyze(g, lay, []int{0, 99}); err == nil {
		t.Fatal("non-edge hop accepted")
	}
}
