package stages

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveDFT is the O(n²) reference transform.
func naiveDFT(in []float64) (re, im []float64) {
	n := len(in)
	re = make([]float64, n)
	im = make([]float64, n)
	for k := 0; k < n; k++ {
		for t := 0; t < n; t++ {
			ang := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			re[k] += in[t] * math.Cos(ang)
			im[k] += in[t] * math.Sin(ang)
		}
	}
	return re, im
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 8, 16, 64} {
		in := make([]float64, n)
		for i := range in {
			in[i] = rng.NormFloat64()
		}
		out := NewFFT().Process(in)
		wantRe, wantIm := naiveDFT(in)
		for k := 0; k < n; k++ {
			if math.Abs(out[2*k]-wantRe[k]) > 1e-9 || math.Abs(out[2*k+1]-wantIm[k]) > 1e-9 {
				t.Fatalf("n=%d bin %d: got (%v,%v), want (%v,%v)",
					n, k, out[2*k], out[2*k+1], wantRe[k], wantIm[k])
			}
		}
	}
}

func TestFFTImpulseIsFlat(t *testing.T) {
	in := make([]float64, 8)
	in[0] = 1
	out := NewFFT().Process(in)
	for k := 0; k < 8; k++ {
		if math.Abs(out[2*k]-1) > 1e-12 || math.Abs(out[2*k+1]) > 1e-12 {
			t.Fatalf("impulse spectrum not flat at bin %d: (%v, %v)", k, out[2*k], out[2*k+1])
		}
	}
}

func TestFFTSinglePureTone(t *testing.T) {
	const n, freq = 32, 5
	in := make([]float64, n)
	for i := range in {
		in[i] = math.Cos(2 * math.Pi * freq * float64(i) / n)
	}
	out := NewFFT().Process(in)
	for k := 0; k < n; k++ {
		mag := math.Hypot(out[2*k], out[2*k+1])
		want := 0.0
		if k == freq || k == n-freq {
			want = n / 2
		}
		if math.Abs(mag-want) > 1e-9 {
			t.Fatalf("bin %d magnitude %v, want %v", k, mag, want)
		}
	}
}

func TestFFTZeroPadsToPow2(t *testing.T) {
	out := NewFFT().Process(make([]float64, 5))
	if len(out) != 16 { // next pow2 of 5 is 8 → 16 interleaved values
		t.Fatalf("len = %d, want 16", len(out))
	}
}

func TestIFFTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	in := make([]float64, 64)
	for i := range in {
		in[i] = rng.NormFloat64()
	}
	spec := NewFFT().Process(in)
	back := NewIFFT().Process(spec)
	for i := range in {
		if math.Abs(back[i]-in[i]) > 1e-9 {
			t.Fatalf("round trip differs at %d: %v vs %v", i, back[i], in[i])
		}
	}
}

func TestIFFTValidation(t *testing.T) {
	for _, in := range [][]float64{make([]float64, 3), make([]float64, 12)} {
		in := in
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("len %d accepted", len(in))
				}
			}()
			NewIFFT().Process(in)
		}()
	}
}

func TestSpectralGateDenoises(t *testing.T) {
	const n = 64
	rng := rand.New(rand.NewSource(3))
	clean := make([]float64, n)
	noisy := make([]float64, n)
	for i := range clean {
		clean[i] = 10 * math.Sin(2*math.Pi*4*float64(i)/n)
		noisy[i] = clean[i] + 0.05*rng.NormFloat64()
	}
	chain := &Chain{Stages: []Stage{NewFFT(), &SpectralGate{Threshold: 20}, NewIFFT()}}
	out := chain.Process(noisy)
	// Residual error vs the clean tone must shrink versus the raw noise.
	var errBefore, errAfter float64
	for i := range clean {
		errBefore += (noisy[i] - clean[i]) * (noisy[i] - clean[i])
		errAfter += (out[i] - clean[i]) * (out[i] - clean[i])
	}
	if errAfter >= errBefore {
		t.Fatalf("gate did not denoise: before %v, after %v", errBefore, errAfter)
	}
}

// Property: Parseval — energy in time equals energy in frequency / n.
func TestQuickParseval(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 256 {
			raw = raw[:256]
		}
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				raw[i] = 1 // sanitize extreme quick-generated values
			}
		}
		spec := NewFFT().Process(raw)
		n := len(spec) / 2
		var timeE, freqE float64
		for _, v := range raw {
			timeE += v * v
		}
		for k := 0; k < n; k++ {
			freqE += spec[2*k]*spec[2*k] + spec[2*k+1]*spec[2*k+1]
		}
		freqE /= float64(n)
		scale := math.Max(1, timeE)
		return math.Abs(timeE-freqE)/scale < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: FFT is linear.
func TestQuickFFTLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		n := 16
		a := make([]float64, n)
		b := make([]float64, n)
		sum := make([]float64, n)
		for i := 0; i < n; i++ {
			a[i], b[i] = rng.NormFloat64(), rng.NormFloat64()
			sum[i] = 2*a[i] + 3*b[i]
		}
		fa := NewFFT().Process(a)
		fb := NewFFT().Process(b)
		fs := NewFFT().Process(sum)
		for i := range fs {
			if math.Abs(fs[i]-(2*fa[i]+3*fb[i])) > 1e-9 {
				t.Fatalf("linearity violated at %d", i)
			}
		}
	}
}
