package stages

import (
	"math"
	"testing"
)

// FuzzLZ78RoundTrip checks losslessness over arbitrary byte streams split
// at an arbitrary frame boundary.
func FuzzLZ78RoundTrip(f *testing.F) {
	f.Add([]byte("abracadabra"), uint8(3))
	f.Add([]byte{0, 255, 0, 255, 128}, uint8(1))
	f.Add([]byte{}, uint8(0))
	f.Fuzz(func(t *testing.T, msg []byte, splitRaw uint8) {
		in := make([]float64, len(msg))
		for i, b := range msg {
			in[i] = float64(b)
		}
		split := 0
		if len(in) > 0 {
			split = int(splitRaw) % (len(in) + 1)
		}
		enc := NewLZ78(0)
		stream := append([]float64(nil), enc.Process(in[:split])...)
		stream = append(stream, enc.Process(in[split:])...)
		stream = append(stream, enc.Flush()...)
		got, err := LZ78Decode(stream, 0)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if string(got) != string(msg) {
			t.Fatalf("round trip: %q != %q", got, msg)
		}
	})
}

// FuzzFFTInverse checks FFT∘IFFT is the identity (after pow-2 padding) for
// arbitrary finite inputs.
func FuzzFFTInverse(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) > 512 {
			raw = raw[:512]
		}
		in := make([]float64, len(raw))
		for i, b := range raw {
			in[i] = float64(b) - 128
		}
		spec := NewFFT().Process(in)
		back := NewIFFT().Process(spec)
		for i := range in {
			if math.Abs(back[i]-in[i]) > 1e-6 {
				t.Fatalf("inverse differs at %d: %v vs %v", i, back[i], in[i])
			}
		}
		// Padding region must be ~zero.
		for i := len(in); i < len(back); i++ {
			if math.Abs(back[i]) > 1e-6 {
				t.Fatalf("padding not preserved at %d: %v", i, back[i])
			}
		}
	})
}
