package stages

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9 {
			return false
		}
	}
	return true
}

// naiveConvolve is the reference FIR: full-signal convolution.
func naiveConvolve(coeffs, x []float64) []float64 {
	out := make([]float64, len(x))
	for i := range x {
		for j, c := range coeffs {
			if idx := i - j; idx >= 0 {
				out[i] += c * x[idx]
			}
		}
	}
	return out
}

func TestFIRMatchesNaiveConvolutionAcrossFrames(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	coeffs := []float64{0.5, 0.25, -0.125, 0.0625}
	signal := make([]float64, 64)
	for i := range signal {
		signal[i] = rng.NormFloat64()
	}
	want := naiveConvolve(coeffs, signal)

	// Stream the same signal through in uneven frames; the delay line must
	// make the result identical to whole-signal convolution.
	f := NewFIR(coeffs)
	var got []float64
	for _, frame := range [][]float64{signal[:7], signal[7:8], signal[8:30], signal[30:]} {
		got = append(got, f.Process(frame)...)
	}
	if !almostEqual(got, want) {
		t.Fatalf("streaming FIR differs from naive convolution\ngot  %v\nwant %v", got[:8], want[:8])
	}
}

func TestFIRImpulseResponse(t *testing.T) {
	f := NewFIR([]float64{1, 2, 3})
	out := f.Process([]float64{1, 0, 0, 0})
	if !almostEqual(out, []float64{1, 2, 3, 0}) {
		t.Fatalf("impulse response = %v", out)
	}
}

func TestFIRReset(t *testing.T) {
	f := NewFIR([]float64{1, 1})
	f.Process([]float64{5})
	f.Reset()
	out := f.Process([]float64{1})
	if !almostEqual(out, []float64{1}) {
		t.Fatalf("after reset, response = %v (history leaked)", out)
	}
}

func TestMovingAverage(t *testing.T) {
	f := NewMovingAverage(4)
	out := f.Process([]float64{4, 4, 4, 4, 8})
	if math.Abs(out[3]-4) > 1e-9 || math.Abs(out[4]-5) > 1e-9 {
		t.Fatalf("moving average = %v", out)
	}
}

func TestIIRExponentialSmoother(t *testing.T) {
	// y[i] = 0.5 x[i] + 0.5 y[i-1]: step response converges to 1.
	f := NewIIR([]float64{0.5}, []float64{1, -0.5})
	in := make([]float64, 50)
	for i := range in {
		in[i] = 1
	}
	out := f.Process(in)
	if math.Abs(out[49]-1) > 1e-6 {
		t.Fatalf("step response tail = %v", out[49])
	}
	if out[0] != 0.5 {
		t.Fatalf("first output = %v, want 0.5", out[0])
	}
}

func TestIIRStreamingMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	b := []float64{0.2, 0.1}
	a := []float64{1, -0.3, 0.05}
	signal := make([]float64, 40)
	for i := range signal {
		signal[i] = rng.NormFloat64()
	}
	batch := NewIIR(b, a)
	want := append([]float64(nil), batch.Process(signal)...)

	stream := NewIIR(b, a)
	var got []float64
	for _, fr := range [][]float64{signal[:3], signal[3:17], signal[17:]} {
		got = append(got, stream.Process(fr)...)
	}
	if !almostEqual(got, want) {
		t.Fatal("streaming IIR differs from batch IIR")
	}
}

func TestIIRValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("a[0] != 1 accepted")
		}
	}()
	NewIIR([]float64{1}, []float64{2})
}

func TestSubsamplePhaseAcrossFrames(t *testing.T) {
	s := NewSubsample(3)
	got := append([]float64(nil), s.Process([]float64{0, 1, 2, 3})...)
	got = append(got, s.Process([]float64{4, 5, 6, 7, 8})...)
	if !almostEqual(got, []float64{0, 3, 6}) {
		t.Fatalf("subsample = %v, want [0 3 6]", got)
	}
	s.Reset()
	if out := s.Process([]float64{9}); !almostEqual(out, []float64{9}) {
		t.Fatalf("after reset = %v", out)
	}
}

func TestSubsampleFactorOne(t *testing.T) {
	s := NewSubsample(1)
	in := []float64{1, 2, 3}
	if !almostEqual(s.Process(in), in) {
		t.Fatal("factor-1 subsample should be identity")
	}
}

func TestRescale(t *testing.T) {
	r := &Rescale{Gain: 2, Offset: -1}
	if !almostEqual(r.Process([]float64{0, 1, 2}), []float64{-1, 1, 3}) {
		t.Fatal("rescale wrong")
	}
}

func TestQuantizeBoundsAndRounding(t *testing.T) {
	q := NewQuantize(0, 1, 5) // levels 0..4
	in := []float64{-10, 0, 0.24, 0.26, 0.5, 1, 10}
	got := q.Process(in)
	want := []float64{0, 0, 1, 1, 2, 4, 4}
	if !almostEqual(got, want) {
		t.Fatalf("quantize = %v, want %v", got, want)
	}
}

func TestProjectionConservesMass(t *testing.T) {
	p := NewProjection(8, 3)
	in := []float64{1, 2, 3, 4, 5}
	out := p.Process(in)
	if len(out) != 8 {
		t.Fatalf("bins = %d", len(out))
	}
	var sumIn, sumOut float64
	for _, v := range in {
		sumIn += v
	}
	for _, v := range out {
		sumOut += v
	}
	if math.Abs(sumIn-sumOut) > 1e-9 {
		t.Fatalf("projection lost mass: %v vs %v", sumIn, sumOut)
	}
	if out2 := p.Process(nil); len(out2) != 8 {
		t.Fatal("empty frame should still produce the bin vector")
	}
}

func TestChainAndFunc(t *testing.T) {
	c := &Chain{Stages: []Stage{
		&Rescale{Gain: 2},
		&Func{Label: "plus1", Fn: func(in []float64) []float64 {
			out := make([]float64, len(in))
			for i, x := range in {
				out[i] = x + 1
			}
			return out
		}},
	}}
	if !almostEqual(c.Process([]float64{3}), []float64{7}) {
		t.Fatal("chain composition wrong")
	}
	if c.Name() == "" || c.Stages[1].Name() != "plus1" {
		t.Fatal("names")
	}
	c.Reset() // must not panic
}

func TestLZ78RoundTrip(t *testing.T) {
	enc := NewLZ78(0)
	msg := []byte("abracadabra abracadabra! the quick brown fox abracadabra")
	in := make([]float64, len(msg))
	for i, b := range msg {
		in[i] = float64(b)
	}
	var stream []float64
	stream = append(stream, enc.Process(in[:13])...)
	stream = append(stream, enc.Process(in[13:])...)
	stream = append(stream, enc.Flush()...)
	got, err := LZ78Decode(stream, 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(msg) {
		t.Fatalf("round trip: %q != %q", got, msg)
	}
	// Compression happened: fewer pairs than symbols on repetitive input.
	if len(stream)/2 >= len(msg) {
		t.Fatalf("no compression: %d pairs for %d symbols", len(stream)/2, len(msg))
	}
}

func TestLZ78BoundedDictionaryRoundTrip(t *testing.T) {
	enc := NewLZ78(8)
	msg := []byte("xyxyxyxyxyxyxyxyxyzzzzzzxyxyxy")
	in := make([]float64, len(msg))
	for i, b := range msg {
		in[i] = float64(b)
	}
	stream := append(append([]float64(nil), enc.Process(in)...), enc.Flush()...)
	got, err := LZ78Decode(stream, 8)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(msg) {
		t.Fatalf("bounded dict round trip failed: %q", got)
	}
}

func TestLZ78DecodeErrors(t *testing.T) {
	if _, err := LZ78Decode([]float64{1}, 0); err == nil {
		t.Fatal("odd stream accepted")
	}
	if _, err := LZ78Decode([]float64{99, 65}, 0); err == nil {
		t.Fatal("out-of-range index accepted")
	}
}

// Property: LZ78 round-trips arbitrary byte strings.
func TestQuickLZ78RoundTrip(t *testing.T) {
	f := func(msg []byte) bool {
		enc := NewLZ78(0)
		in := make([]float64, len(msg))
		for i, b := range msg {
			in[i] = float64(b)
		}
		stream := append(append([]float64(nil), enc.Process(in)...), enc.Flush()...)
		got, err := LZ78Decode(stream, 0)
		if err != nil {
			return false
		}
		return string(got) == string(msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: subsample output length is ⌈len/factor⌉ from a fresh phase.
func TestQuickSubsampleLength(t *testing.T) {
	f := func(raw []float64, factorRaw uint8) bool {
		factor := int(factorRaw)%7 + 1
		s := NewSubsample(factor)
		out := s.Process(raw)
		want := (len(raw) + factor - 1) / factor
		return len(out) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStageValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"fir":        func() { NewFIR(nil) },
		"subsample":  func() { NewSubsample(0) },
		"quantize":   func() { NewQuantize(1, 0, 4) },
		"projection": func() { NewProjection(0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: invalid params accepted", name)
				}
			}()
			fn()
		}()
	}
}
