package stages

import "fmt"

// LZ78 is a streaming textual-substitution compressor over quantized
// symbol streams — the 1D data-compression workload of §1 ([19, 22]: the
// massively parallel dictionary compressors with linear communication
// structure). Each input sample is truncated to an integer symbol; the
// output frame contains one (dictionary index, symbol) pair — encoded as
// two consecutive float64 values — per emitted phrase.
//
// Decode inverts the stream exactly, which the tests use to prove
// losslessness.
type LZ78 struct {
	MaxDict int
	dict    map[string]int
	cur     string
	out     []float64
}

// NewLZ78 returns a streaming LZ78 compressor; maxDict bounds dictionary
// growth (0 = unbounded).
func NewLZ78(maxDict int) *LZ78 {
	l := &LZ78{MaxDict: maxDict}
	l.Reset()
	return l
}

func (l *LZ78) Name() string { return "lz78" }

// Reset clears the dictionary and any pending phrase.
func (l *LZ78) Reset() {
	l.dict = make(map[string]int)
	l.cur = ""
}

func (l *LZ78) Process(in []float64) []float64 {
	l.out = l.out[:0]
	for _, x := range in {
		sym := byte(int(x) & 0xff)
		// string([]byte{...}) keeps the raw byte: string(sym) would UTF-8
		// encode values ≥ 0x80 into two bytes and corrupt phrase keys.
		next := l.cur + string([]byte{sym})
		if _, ok := l.dict[next]; ok {
			l.cur = next
			continue
		}
		// Emit (index of cur, sym) and extend the dictionary.
		idx := 0
		if l.cur != "" {
			idx = l.dict[l.cur]
		}
		l.out = append(l.out, float64(idx), float64(sym))
		if l.MaxDict == 0 || len(l.dict) < l.MaxDict {
			l.dict[next] = len(l.dict) + 1
		}
		l.cur = ""
	}
	return l.out
}

// Flush emits the pending phrase, if any, as a final (index, -1) pair.
// Call once at end of stream before decoding.
func (l *LZ78) Flush() []float64 {
	if l.cur == "" {
		return nil
	}
	idx := l.dict[l.cur]
	l.cur = ""
	return []float64{float64(idx), -1}
}

// LZ78Decode inverts a complete LZ78 stream (the concatenation of all
// Process outputs plus Flush). maxDict must match the encoder's setting so
// the decoder's dictionary growth mirrors the encoder's. It returns the
// symbol stream.
func LZ78Decode(stream []float64, maxDict int) ([]byte, error) {
	if len(stream)%2 != 0 {
		return nil, fmt.Errorf("stages: LZ78 stream has odd length %d", len(stream))
	}
	dict := []string{""}
	var out []byte
	for i := 0; i < len(stream); i += 2 {
		idx := int(stream[i])
		if idx < 0 || idx >= len(dict) {
			return nil, fmt.Errorf("stages: LZ78 index %d out of range (dict %d)", idx, len(dict))
		}
		phrase := dict[idx]
		if stream[i+1] < 0 { // flush marker: phrase without new symbol
			out = append(out, phrase...)
			continue
		}
		phrase += string([]byte{byte(int(stream[i+1]) & 0xff)})
		out = append(out, phrase...)
		if maxDict == 0 || len(dict)-1 < maxDict {
			dict = append(dict, phrase)
		}
	}
	return out, nil
}
