package stages

import (
	"fmt"
	"math"
)

// FFT computes the radix-2 Cooley–Tukey fast Fourier transform. Frames are
// zero-padded to the next power of two; the output frame interleaves
// (re, im) pairs, so it has 2·N values for an N-point transform. Spectral
// stages (SpectralGate) consume this layout and IFFT inverts it.
type FFT struct {
	out []float64
}

// NewFFT returns an FFT stage.
func NewFFT() *FFT { return &FFT{} }

func (f *FFT) Name() string { return "fft" }

// Reset implements Stage (the FFT is stateless).
func (f *FFT) Reset() {}

func (f *FFT) Process(in []float64) []float64 {
	n := nextPow2(len(in))
	re := make([]float64, n)
	im := make([]float64, n)
	copy(re, in)
	fftInPlace(re, im, false)
	if cap(f.out) < 2*n {
		f.out = make([]float64, 2*n)
	}
	out := f.out[:2*n]
	for i := 0; i < n; i++ {
		out[2*i] = re[i]
		out[2*i+1] = im[i]
	}
	return out
}

// IFFT inverts the interleaved spectrum produced by FFT, returning the
// time-domain frame (length N).
type IFFT struct {
	out []float64
}

// NewIFFT returns an inverse-FFT stage.
func NewIFFT() *IFFT { return &IFFT{} }

func (f *IFFT) Name() string { return "ifft" }

// Reset implements Stage.
func (f *IFFT) Reset() {}

func (f *IFFT) Process(in []float64) []float64 {
	if len(in)%2 != 0 {
		panic("stages: IFFT input must interleave (re, im) pairs")
	}
	n := len(in) / 2
	if n&(n-1) != 0 {
		panic(fmt.Sprintf("stages: IFFT length %d is not a power of two", n))
	}
	re := make([]float64, n)
	im := make([]float64, n)
	for i := 0; i < n; i++ {
		re[i] = in[2*i]
		im[i] = in[2*i+1]
	}
	fftInPlace(re, im, true)
	if cap(f.out) < n {
		f.out = make([]float64, n)
	}
	out := f.out[:n]
	copy(out, re)
	return out
}

// SpectralGate zeroes every frequency bin whose magnitude falls below
// Threshold — the classic denoising step between an FFT and an IFFT.
type SpectralGate struct {
	Threshold float64
	out       []float64
}

func (s *SpectralGate) Name() string { return "spectral-gate" }

// Reset implements Stage.
func (s *SpectralGate) Reset() {}

func (s *SpectralGate) Process(in []float64) []float64 {
	if cap(s.out) < len(in) {
		s.out = make([]float64, len(in))
	}
	out := s.out[:len(in)]
	copy(out, in)
	for i := 0; i+1 < len(out); i += 2 {
		mag := math.Hypot(out[i], out[i+1])
		if mag < s.Threshold {
			out[i], out[i+1] = 0, 0
		}
	}
	return out
}

// fftInPlace runs an iterative radix-2 FFT (or inverse) over re/im, whose
// length must be a power of two.
func fftInPlace(re, im []float64, inverse bool) {
	n := len(re)
	if n <= 1 {
		return
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			re[i], re[j] = re[j], re[i]
			im[i], im[j] = im[j], im[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		ang := 2 * math.Pi / float64(length)
		if !inverse {
			ang = -ang
		}
		wRe, wIm := math.Cos(ang), math.Sin(ang)
		for i := 0; i < n; i += length {
			cwRe, cwIm := 1.0, 0.0
			for j := 0; j < length/2; j++ {
				uRe, uIm := re[i+j], im[i+j]
				vRe := re[i+j+length/2]*cwRe - im[i+j+length/2]*cwIm
				vIm := re[i+j+length/2]*cwIm + im[i+j+length/2]*cwRe
				re[i+j], im[i+j] = uRe+vRe, uIm+vIm
				re[i+j+length/2], im[i+j+length/2] = uRe-vRe, uIm-vIm
				cwRe, cwIm = cwRe*wRe-cwIm*wIm, cwRe*wIm+cwIm*wRe
			}
		}
	}
	if inverse {
		for i := range re {
			re[i] /= float64(n)
			im[i] /= float64(n)
		}
	}
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
