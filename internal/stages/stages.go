// Package stages implements the stream-processing stages that motivate the
// paper (§1): subsampling, rescaling, FIR and IIR filtering, projection
// transforms of the Hough/Radon family, and textual-substitution
// compression. They are the workloads the pipeline runtime maps onto
// gracefully degradable networks.
//
// A Stage transforms one frame (a []float64 sample block) into the next
// frame. Stages are deterministic and side-effect free except for explicit
// internal filter state, which Reset clears; the runtime gives each mapped
// processor its own stage instances, so no synchronization is needed.
package stages

import (
	"fmt"
	"math"
)

// Stage is one step of a processing pipeline.
type Stage interface {
	// Name identifies the stage in metrics and logs.
	Name() string
	// Process transforms a frame. The input slice is not retained; the
	// returned slice may alias internal scratch and is only valid until
	// the next call.
	Process(in []float64) []float64
	// Reset clears internal state (filter delay lines, dictionaries).
	Reset()
}

// FIR is a finite-impulse-response filter: out[i] = Σ_j coeff[j]·x[i-j],
// with the delay line persisting across frames (streaming convolution).
type FIR struct {
	Coeffs []float64
	hist   []float64
	out    []float64
}

// NewFIR returns an FIR stage with the given taps.
func NewFIR(coeffs []float64) *FIR {
	if len(coeffs) == 0 {
		panic("stages: FIR requires at least one coefficient")
	}
	return &FIR{Coeffs: append([]float64(nil), coeffs...)}
}

// NewMovingAverage returns an n-tap moving-average FIR.
func NewMovingAverage(n int) *FIR {
	c := make([]float64, n)
	for i := range c {
		c[i] = 1 / float64(n)
	}
	return NewFIR(c)
}

func (f *FIR) Name() string { return fmt.Sprintf("fir(%d)", len(f.Coeffs)) }

func (f *FIR) Reset() { f.hist = f.hist[:0] }

func (f *FIR) Process(in []float64) []float64 {
	if cap(f.out) < len(in) {
		f.out = make([]float64, len(in))
	}
	out := f.out[:len(in)]
	// Extend history with the new frame, convolve, then keep the tail.
	f.hist = append(f.hist, in...)
	n := len(f.hist)
	for i := range in {
		pos := n - len(in) + i
		var acc float64
		for j, c := range f.Coeffs {
			if idx := pos - j; idx >= 0 {
				acc += c * f.hist[idx]
			}
		}
		out[i] = acc
	}
	// Only the last len(Coeffs)-1 samples matter for future frames.
	if keep := len(f.Coeffs) - 1; len(f.hist) > keep {
		copy(f.hist, f.hist[len(f.hist)-keep:])
		f.hist = f.hist[:keep]
	}
	return out
}

// IIR is a direct-form-I infinite-impulse-response filter:
//
//	out[i] = Σ_j B[j]·x[i-j] − Σ_{j≥1} A[j]·y[i-j],  A[0] ≡ 1.
type IIR struct {
	B, A   []float64
	xh, yh []float64
	out    []float64
}

// NewIIR returns an IIR stage; a[0] must be 1.
func NewIIR(b, a []float64) *IIR {
	if len(b) == 0 || len(a) == 0 || a[0] != 1 {
		panic("stages: IIR requires b non-empty and a[0] == 1")
	}
	return &IIR{B: append([]float64(nil), b...), A: append([]float64(nil), a...)}
}

func (f *IIR) Name() string { return fmt.Sprintf("iir(%d,%d)", len(f.B), len(f.A)) }

func (f *IIR) Reset() { f.xh, f.yh = f.xh[:0], f.yh[:0] }

func (f *IIR) Process(in []float64) []float64 {
	if cap(f.out) < len(in) {
		f.out = make([]float64, len(in))
	}
	out := f.out[:len(in)]
	for i, x := range in {
		f.xh = append(f.xh, x)
		var acc float64
		for j, b := range f.B {
			if idx := len(f.xh) - 1 - j; idx >= 0 {
				acc += b * f.xh[idx]
			}
		}
		for j := 1; j < len(f.A); j++ {
			if idx := len(f.yh) - j; idx >= 0 {
				acc -= f.A[j] * f.yh[idx]
			}
		}
		f.yh = append(f.yh, acc)
		out[i] = acc
	}
	trim(&f.xh, len(f.B)-1)
	trim(&f.yh, len(f.A)-1)
	return out
}

func trim(buf *[]float64, keep int) {
	if keep < 0 {
		keep = 0
	}
	if len(*buf) > keep {
		copy(*buf, (*buf)[len(*buf)-keep:])
		*buf = (*buf)[:keep]
	}
}

// Subsample keeps every Factor-th sample — the decimation step of
// asymmetric video compression (§1).
type Subsample struct {
	Factor int
	phase  int
	out    []float64
}

// NewSubsample returns a decimator keeping one sample in factor.
func NewSubsample(factor int) *Subsample {
	if factor < 1 {
		panic("stages: subsample factor must be ≥ 1")
	}
	return &Subsample{Factor: factor}
}

func (s *Subsample) Name() string { return fmt.Sprintf("subsample(%d)", s.Factor) }

func (s *Subsample) Reset() { s.phase = 0 }

func (s *Subsample) Process(in []float64) []float64 {
	s.out = s.out[:0]
	for _, x := range in {
		if s.phase == 0 {
			s.out = append(s.out, x)
		}
		s.phase = (s.phase + 1) % s.Factor
	}
	return s.out
}

// Rescale applies out = Gain·x + Offset (contrast/brightness rescaling).
type Rescale struct {
	Gain, Offset float64
	out          []float64
}

func (r *Rescale) Name() string { return "rescale" }

func (r *Rescale) Reset() {}

func (r *Rescale) Process(in []float64) []float64 {
	if cap(r.out) < len(in) {
		r.out = make([]float64, len(in))
	}
	out := r.out[:len(in)]
	for i, x := range in {
		out[i] = r.Gain*x + r.Offset
	}
	return out
}

// Quantize rounds samples to Levels uniform steps over [Min, Max],
// emitting the level index — the symbol stream a downstream dictionary
// compressor consumes.
type Quantize struct {
	Min, Max float64
	Levels   int
	out      []float64
}

// NewQuantize returns a uniform quantizer.
func NewQuantize(min, max float64, levels int) *Quantize {
	if levels < 2 || max <= min {
		panic("stages: quantizer requires levels ≥ 2 and max > min")
	}
	return &Quantize{Min: min, Max: max, Levels: levels}
}

func (q *Quantize) Name() string { return fmt.Sprintf("quantize(%d)", q.Levels) }

func (q *Quantize) Reset() {}

func (q *Quantize) Process(in []float64) []float64 {
	if cap(q.out) < len(in) {
		q.out = make([]float64, len(in))
	}
	out := q.out[:len(in)]
	scale := float64(q.Levels-1) / (q.Max - q.Min)
	for i, x := range in {
		v := math.Round((x - q.Min) * scale)
		if v < 0 {
			v = 0
		}
		if v > float64(q.Levels-1) {
			v = float64(q.Levels - 1)
		}
		out[i] = v
	}
	return out
}

// Projection accumulates a binned projection of the frame — the 1D kernel
// of Hough/Radon-transform pipelines for image and CT processing [1]:
// sample i of value v adds v to bin (i·Bins/len + shear) mod Bins.
type Projection struct {
	Bins  int
	Shear int
	out   []float64
}

// NewProjection returns a binned projection stage.
func NewProjection(bins, shear int) *Projection {
	if bins < 1 {
		panic("stages: projection requires ≥ 1 bin")
	}
	return &Projection{Bins: bins, Shear: shear}
}

func (p *Projection) Name() string { return fmt.Sprintf("projection(%d)", p.Bins) }

func (p *Projection) Reset() {}

func (p *Projection) Process(in []float64) []float64 {
	if cap(p.out) < p.Bins {
		p.out = make([]float64, p.Bins)
	}
	out := p.out[:p.Bins]
	for i := range out {
		out[i] = 0
	}
	if len(in) == 0 {
		return out
	}
	for i, v := range in {
		bin := (i*p.Bins/len(in) + p.Shear) % p.Bins
		if bin < 0 {
			bin += p.Bins
		}
		out[bin] += v
	}
	return out
}

// Chain applies a fixed sequence of stages as one stage.
type Chain struct {
	Stages []Stage
}

func (c *Chain) Name() string {
	s := "chain("
	for i, st := range c.Stages {
		if i > 0 {
			s += "→"
		}
		s += st.Name()
	}
	return s + ")"
}

func (c *Chain) Reset() {
	for _, st := range c.Stages {
		st.Reset()
	}
}

func (c *Chain) Process(in []float64) []float64 {
	for _, st := range c.Stages {
		in = st.Process(in)
	}
	return in
}

// Func wraps a pure function as a stage.
type Func struct {
	Label string
	Fn    func(in []float64) []float64
}

func (f *Func) Name() string { return f.Label }

func (f *Func) Reset() {}

func (f *Func) Process(in []float64) []float64 { return f.Fn(in) }
