package workload

import (
	"math"
	"testing"

	"gdpn/internal/stages"
)

func drain(g Generator, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

func TestToneFrequencyPeak(t *testing.T) {
	// A normalized-frequency tone must put its FFT energy in the right bin.
	const n = 128
	g := NewTone(8.0/n, 1, 1)
	samples := drain(g, n)
	spec := stages.NewFFT().Process(samples)
	peak, peakMag := -1, 0.0
	for k := 0; k <= n/2; k++ {
		mag := math.Hypot(spec[2*k], spec[2*k+1])
		if mag > peakMag {
			peak, peakMag = k, mag
		}
	}
	if peak != 8 {
		t.Fatalf("tone peak at bin %d, want 8", peak)
	}
}

func TestToneResetRepeats(t *testing.T) {
	g := NewTone(0.1, 2, 1)
	a := drain(g, 16)
	g.Reset()
	b := drain(g, 16)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Reset did not restart the stream")
		}
	}
}

func TestChirpSweeps(t *testing.T) {
	g := NewChirp(0.01, 0.2, 1, 256)
	s := drain(g, 256)
	// Zero crossings grow denser toward the end of the sweep.
	early, late := crossings(s[:64]), crossings(s[192:])
	if late <= early {
		t.Fatalf("chirp does not sweep: %d early crossings vs %d late", early, late)
	}
	if g.Name() != "chirp" {
		t.Fatal("name")
	}
}

func crossings(s []float64) int {
	c := 0
	for i := 1; i < len(s); i++ {
		if (s[i-1] < 0) != (s[i] < 0) {
			c++
		}
	}
	return c
}

func TestNoiseStatsAndDeterminism(t *testing.T) {
	g := NewNoise(2, 42)
	s := drain(g, 20000)
	var mean, varsum float64
	for _, v := range s {
		mean += v
	}
	mean /= float64(len(s))
	for _, v := range s {
		varsum += (v - mean) * (v - mean)
	}
	sd := math.Sqrt(varsum / float64(len(s)))
	if math.Abs(mean) > 0.1 || math.Abs(sd-2) > 0.1 {
		t.Fatalf("noise stats: mean %v, sd %v", mean, sd)
	}
	g.Reset()
	if g.Next() != s[0] {
		t.Fatal("noise not deterministic after Reset")
	}
}

func TestScanlineStructure(t *testing.T) {
	g := NewScanline(64)
	row0 := drain(g, 64)
	row1 := drain(g, 64)
	// The bright block occupies width/8 pixels per row...
	bright := 0
	for _, v := range row0 {
		if v >= 128 {
			bright++
		}
	}
	if bright != 8 {
		t.Fatalf("block width %d, want 8", bright)
	}
	// ...and drifts by one pixel per row.
	first := func(row []float64) int {
		for i, v := range row {
			if v >= 128 {
				return i
			}
		}
		return -1
	}
	if first(row1) != first(row0)+1 {
		t.Fatalf("block did not drift: %d → %d", first(row0), first(row1))
	}
}

func TestMarkovCompressibility(t *testing.T) {
	// A sticky Markov stream must compress far better than uniform noise.
	sticky := NewMarkov(16, 0.9, 1)
	uniform := NewMarkov(16, 0, 1)
	ratio := func(g Generator) float64 {
		in := drain(g, 4096)
		enc := stages.NewLZ78(0)
		stream := append(enc.Process(in), enc.Flush()...)
		return float64(len(in)) / float64(len(stream)/2)
	}
	rs, ru := ratio(sticky), ratio(uniform)
	if rs <= ru {
		t.Fatalf("sticky ratio %v not better than uniform %v", rs, ru)
	}
	if m := NewMarkov(1, 0, 1); m.Alphabet != 2 {
		t.Fatal("alphabet clamp")
	}
}

func TestMixAndFrames(t *testing.T) {
	m := &Mix{Parts: []Generator{NewTone(0.1, 1, 1), NewNoise(0, 3)}}
	frames := Frames(m, 3, 32, 10)
	if len(frames) != 3 || frames[0].Seq != 10 || frames[2].Seq != 12 {
		t.Fatalf("frames %+v", frames)
	}
	for _, f := range frames {
		if len(f.Data) != 32 {
			t.Fatal("frame size")
		}
	}
	m.Reset()
	again := Frames(m, 1, 32, 0)
	for j := range again[0].Data {
		if again[0].Data[j] != frames[0].Data[j] {
			t.Fatal("Mix.Reset did not restart parts")
		}
	}
	if m.Name() != "mix" {
		t.Fatal("name")
	}
}

func TestVideoComposite(t *testing.T) {
	g := Video(64, 5)
	s := drain(g, 4096)
	// Must contain the bright block values (>= ~120 after noise).
	max := 0.0
	for _, v := range s {
		if v > max {
			max = v
		}
	}
	if max < 100 {
		t.Fatalf("video stream lacks block highlights: max %v", max)
	}
	if g.Name() != "mix" {
		t.Fatal("Video should be a Mix")
	}
}
