// Package workload generates the synthetic input streams the experiments
// and examples feed through pipeline networks. The paper's motivating
// applications (§1) — video compression, speech processing, filtering,
// CT projections — are proprietary or hardware-bound; these generators
// produce streams with the same structural properties the stages care
// about: tonal content for filters and FFTs, spatial correlation for
// subsampling, and repetitive symbol patterns for dictionary compression.
// All generators are deterministic per seed.
package workload

import (
	"math"
	"math/rand"

	"gdpn/internal/pipeline"
)

// Generator produces one sample at a time.
type Generator interface {
	// Name identifies the workload in experiment tables.
	Name() string
	// Next returns the next sample of the stream.
	Next() float64
	// Reset restarts the stream from the beginning.
	Reset()
}

// Tone is a pure sinusoid: Amp·sin(2π·Freq·t + Phase), t in samples of
// SampleRate.
type Tone struct {
	Freq, Amp, Phase float64
	SampleRate       float64
	t                int
}

// NewTone returns a sinusoid generator at the given normalized frequency
// (cycles per sample rate of 1.0 when sampleRate is 0).
func NewTone(freq, amp float64, sampleRate float64) *Tone {
	if sampleRate <= 0 {
		sampleRate = 1
	}
	return &Tone{Freq: freq, Amp: amp, SampleRate: sampleRate}
}

func (g *Tone) Name() string { return "tone" }

func (g *Tone) Reset() { g.t = 0 }

func (g *Tone) Next() float64 {
	v := g.Amp * math.Sin(2*math.Pi*g.Freq*float64(g.t)/g.SampleRate+g.Phase)
	g.t++
	return v
}

// Chirp sweeps linearly from F0 to F1 over Span samples, then repeats —
// the classic radar/sonar test signal.
type Chirp struct {
	F0, F1, Amp float64
	Span        int
	t           int
}

// NewChirp returns a repeating linear chirp.
func NewChirp(f0, f1, amp float64, span int) *Chirp {
	if span < 1 {
		span = 1
	}
	return &Chirp{F0: f0, F1: f1, Amp: amp, Span: span}
}

func (g *Chirp) Name() string { return "chirp" }

func (g *Chirp) Reset() { g.t = 0 }

func (g *Chirp) Next() float64 {
	pos := float64(g.t%g.Span) / float64(g.Span)
	freq := g.F0 + (g.F1-g.F0)*pos
	v := g.Amp * math.Sin(2*math.Pi*freq*float64(g.t))
	g.t++
	return v
}

// Noise is Gaussian white noise with the given standard deviation.
type Noise struct {
	Sigma float64
	seed  int64
	rng   *rand.Rand
}

// NewNoise returns deterministic Gaussian noise.
func NewNoise(sigma float64, seed int64) *Noise {
	return &Noise{Sigma: sigma, seed: seed, rng: rand.New(rand.NewSource(seed))}
}

func (g *Noise) Name() string { return "noise" }

func (g *Noise) Reset() { g.rng = rand.New(rand.NewSource(g.seed)) }

func (g *Noise) Next() float64 { return g.Sigma * g.rng.NormFloat64() }

// Scanline emulates a video scanline stream: a smooth horizontal gradient
// with a bright block that drifts one pixel per line — high spatial
// correlation, the property subsampling and dictionary compression
// exploit.
type Scanline struct {
	Width  int
	x, row int
}

// NewScanline returns a scanline generator of the given width.
func NewScanline(width int) *Scanline {
	if width < 4 {
		width = 4
	}
	return &Scanline{Width: width}
}

func (g *Scanline) Name() string { return "scanline" }

func (g *Scanline) Reset() { g.x, g.row = 0, 0 }

func (g *Scanline) Next() float64 {
	blockStart := g.row % g.Width
	v := float64(g.x) / float64(g.Width) * 64 // gradient 0..64
	if dx := g.x - blockStart; dx >= 0 && dx < g.Width/8 {
		v += 128 // the moving block
	}
	g.x++
	if g.x == g.Width {
		g.x = 0
		g.row++
	}
	return v
}

// Markov emits symbols 0..Alphabet-1 with a sticky transition matrix
// (probability Stickiness of repeating the previous symbol) — repetitive
// enough for LZ78 to compress well, random enough to be nontrivial.
type Markov struct {
	Alphabet   int
	Stickiness float64
	seed       int64
	rng        *rand.Rand
	prev       int
}

// NewMarkov returns a sticky Markov symbol source.
func NewMarkov(alphabet int, stickiness float64, seed int64) *Markov {
	if alphabet < 2 {
		alphabet = 2
	}
	return &Markov{Alphabet: alphabet, Stickiness: stickiness, seed: seed, rng: rand.New(rand.NewSource(seed))}
}

func (g *Markov) Name() string { return "markov" }

func (g *Markov) Reset() {
	g.rng = rand.New(rand.NewSource(g.seed))
	g.prev = 0
}

func (g *Markov) Next() float64 {
	if g.rng.Float64() >= g.Stickiness {
		g.prev = g.rng.Intn(g.Alphabet)
	}
	return float64(g.prev)
}

// Mix sums several generators sample-wise.
type Mix struct {
	Parts []Generator
}

func (g *Mix) Name() string { return "mix" }

func (g *Mix) Reset() {
	for _, p := range g.Parts {
		p.Reset()
	}
}

func (g *Mix) Next() float64 {
	var v float64
	for _, p := range g.Parts {
		v += p.Next()
	}
	return v
}

// Frames draws `count` frames of `size` samples from the generator.
func Frames(g Generator, count, size, firstSeq int) []pipeline.Frame {
	out := make([]pipeline.Frame, count)
	for i := range out {
		data := make([]float64, size)
		Fill(g, data)
		out[i] = pipeline.Frame{Seq: firstSeq + i, Data: data}
	}
	return out
}

// Fill draws len(data) samples from the generator into data in place —
// the pooled-buffer variant of Frames: a producer that leases frame
// storage from the engine pool fills it here without allocating.
func Fill(g Generator, data []float64) {
	for i := range data {
		data[i] = g.Next()
	}
}

// Video returns the composite stream used by the streaming experiments: a
// scanline image layer plus a tonal carrier and mild sensor noise.
func Video(width int, seed int64) Generator {
	return &Mix{Parts: []Generator{
		NewScanline(width),
		NewTone(0.05, 4, 1),
		NewNoise(0.8, seed),
	}}
}
