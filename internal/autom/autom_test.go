package autom

import (
	"testing"

	"gdpn/internal/construct"
	"gdpn/internal/graph"
)

func computeOrder(t *testing.T, g *graph.Graph, opts Options) int {
	t.Helper()
	gr := Compute(g, opts)
	if !gr.Complete() {
		t.Fatalf("%s: generator search did not complete", g.Name())
	}
	order, ok := gr.Order()
	if !ok {
		t.Fatalf("%s: closure not materialized", g.Name())
	}
	return order
}

// G1(k) is K_{k+1} with one input and one output terminal per processor:
// any processor permutation is an automorphism, and the global I/O swap
// fixes the processors, so |Aut| = 2·(k+1)!.
func TestGroupOrderG1(t *testing.T) {
	for k, want := range map[int]int{1: 4, 2: 12, 3: 48} {
		g := construct.G1(k)
		if got := computeOrder(t, g, Options{}); got != want {
			t.Errorf("G1(%d): order = %d, want %d", k, got, want)
		}
	}
}

// G2(k) is K_{k+2} with distinguished end processors a (input only) and b
// (output only): the k middle processors permute freely and the I/O swap
// exchanges a and b, so |Aut| = 2·k!.
func TestGroupOrderG2(t *testing.T) {
	for k, want := range map[int]int{1: 2, 2: 4, 3: 12} {
		g := construct.G2(k)
		if got := computeOrder(t, g, Options{}); got != want {
			t.Errorf("G2(%d): order = %d, want %d", k, got, want)
		}
	}
}

// G3(5) has 8 processors paired by the deleted matching: the two
// both-terminal pairs (p0,p1),(p2,p3) flip internally and exchange, the two
// mixed pairs (p4,p5),(p6,p7) exchange, and the I/O swap doubles it all:
// 2·2·2·2·2 = 32. G3(4)'s asymmetric terminal profile leaves only the I/O
// swap itself.
func TestGroupOrderG3(t *testing.T) {
	for k, want := range map[int]int{4: 2, 5: 32} {
		g := construct.G3(k)
		if got := computeOrder(t, g, Options{}); got != want {
			t.Errorf("G3(%d): order = %d, want %d", k, got, want)
		}
	}
}

// For large enough rings the asymptotic family's only non-trivial symmetry
// is the ring reflection composed with the I/O swap — rotations do not
// respect the S/R split. On the smallest instances (m ≤ 9 ring nodes, where
// the circulant is nearly complete and non-edge constraints are weak) the
// generic search finds one extra strict reflection beyond the closed-form
// generator; that only increases pruning and is asserted here too.
func TestGroupOrderAsymptotic(t *testing.T) {
	for _, c := range []struct{ n, k, want int }{
		{14, 4, 4}, // m=8: extra strict symmetry of the dense ring
		{16, 4, 2}, // m=10: reflection only
		{15, 5, 2},
	} {
		g, lay, err := construct.Asymptotic(c.n, c.k)
		if err != nil {
			t.Fatal(err)
		}
		refl, err := Reflection(g, lay)
		if err != nil {
			t.Fatalf("Reflection(%d,%d): %v", c.n, c.k, err)
		}
		if !refl.IOSwap {
			t.Error("reflection should be an IO-swap automorphism")
		}
		if got := computeOrder(t, g, Options{Seeds: []Perm{refl}}); got != c.want {
			t.Errorf("Asymptotic(%d,%d): order = %d, want %d", c.n, c.k, got, c.want)
		}
	}
}

// The reflection must also hold (and certificate-check) on an instance with
// the odd-k bisector offset.
func TestReflectionOddK(t *testing.T) {
	g, lay, err := construct.Asymptotic(construct.MinAsymptoticN(5), 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Reflection(g, lay); err != nil {
		t.Fatalf("Reflection on k=5: %v", err)
	}
}

func TestCheckAutomorphismRejects(t *testing.T) {
	g := construct.G1(2)
	n := g.NumNodes()

	id := identityPerm(n)
	if err := CheckAutomorphism(g, id); err != nil {
		t.Fatalf("identity rejected: %v", err)
	}

	// Swapping a processor with a terminal breaks the kind condition.
	bad := identityPerm(n)
	p := g.Processors()[0]
	it := g.InputTerminals()[0]
	bad.Map[p], bad.Map[it] = int32(it), int32(p)
	if err := CheckAutomorphism(g, bad); err == nil {
		t.Error("kind-violating permutation accepted")
	}

	// A non-bijection.
	bad = identityPerm(n)
	bad.Map[0] = 1
	if err := CheckAutomorphism(g, bad); err == nil {
		t.Error("non-bijection accepted")
	}

	// Swapping two input terminals attached to different processors maps an
	// edge to a non-edge.
	its := g.InputTerminals()
	bad = identityPerm(n)
	bad.Map[its[0]], bad.Map[its[1]] = int32(its[1]), int32(its[0])
	if err := CheckAutomorphism(g, bad); err == nil {
		t.Error("edge-violating permutation accepted")
	}

	// Wrong length.
	if err := CheckAutomorphism(g, Perm{Map: make([]int32, n-1)}); err == nil {
		t.Error("short permutation accepted")
	}
}

// Compute must silently drop invalid seeds rather than trust them.
func TestComputeDropsInvalidSeeds(t *testing.T) {
	g := construct.G2(2)
	n := g.NumNodes()
	bad := identityPerm(n)
	bad.Map[0], bad.Map[1] = 1, 0
	bad.Map[2] = 2 // arbitrary; likely breaks edges/kinds
	gr := Compute(g, Options{Seeds: []Perm{bad, identityPerm(n)}})
	for _, gen := range gr.Generators() {
		if err := CheckAutomorphism(g, gen); err != nil {
			t.Fatalf("uncertified generator in group: %v", err)
		}
	}
	if got := computeOrder(t, g, Options{}); got != 4 {
		t.Errorf("G2(2) order = %d, want 4", got)
	}
}

// Every materialized element must itself be a certified automorphism, and
// orbits under the closure must be consistent: applying any element to a
// node set and sorting yields a set tolerated iff the original is (checked
// structurally here via kinds/degrees only).
func TestElementsAreAutomorphisms(t *testing.T) {
	g := construct.G3(5)
	gr := Compute(g, Options{})
	elems, ok := gr.Elements()
	if !ok {
		t.Fatal("closure not materialized")
	}
	for i, e := range elems {
		if err := CheckAutomorphism(g, e); err != nil {
			t.Fatalf("element %d invalid: %v", i, err)
		}
	}
}

// With a tiny MaxElements the closure must be dropped (nil, false), while
// generators survive.
func TestMaterializeCap(t *testing.T) {
	g := construct.G1(3) // order 48 > cap 4
	gr := Compute(g, Options{MaxElements: 4})
	if _, ok := gr.Elements(); ok {
		t.Error("closure materialized despite cap")
	}
	if _, ok := gr.Order(); ok {
		t.Error("order known despite cap")
	}
	if gr.Trivial() {
		t.Error("generators lost under cap")
	}
}

// Exhausting the budget must yield Complete() == false, never a wrong group.
func TestBudgetExhaustion(t *testing.T) {
	g := construct.G1(3)
	gr := Compute(g, Options{Budget: 5})
	if gr.Complete() {
		t.Error("search claimed completeness with a 5-step budget")
	}
	for _, gen := range gr.Generators() {
		if err := CheckAutomorphism(g, gen); err != nil {
			t.Fatalf("invalid generator under budget pressure: %v", err)
		}
	}
}

// Perm algebra sanity: inverse and composition round-trip.
func TestPermAlgebra(t *testing.T) {
	g := construct.G2(3)
	gr := Compute(g, Options{})
	for _, p := range gr.Generators() {
		inv := p.Inverse()
		if inv.IOSwap != p.IOSwap {
			t.Error("inverse changed IOSwap")
		}
		if !compose(p, inv).identity() || !compose(inv, p).identity() {
			t.Error("p∘p⁻¹ is not the identity")
		}
		if p.IOSwap && compose(p, p).IOSwap {
			t.Error("two IO-swaps composed to an IO-swap")
		}
	}
}
