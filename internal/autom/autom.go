// Package autom computes automorphism groups of the labeled solution
// graphs, for symmetry-reduced exhaustive verification.
//
// A Perm is a node permutation that preserves adjacency and either
// preserves every node kind (a strict automorphism) or swaps input and
// output terminals wholesale (an IO-swap automorphism). Both preserve
// k-graceful degradability fault set by fault set: a pipeline for fault set
// F maps under the permutation to a pipeline for the image of F — reversed
// end-to-end in the IO-swap case, which the paper's definition (§2) accepts
// since a pipeline may run from either terminal kind to the other. Two
// fault sets in the same orbit are therefore tolerated or not *together*,
// so an exhaustive verifier only needs one representative per orbit
// (verify.Options.ExploitSymmetry).
//
// Generators come from two sources, and every generator from either source
// is certificate-checked by CheckAutomorphism before it is trusted:
//
//   - cheap closed-form candidates for the circulant family of §3.4
//     (Reflection): the dihedral mirror of the ring composed with the
//     input/output exchange, respecting node kinds and terminal pairing;
//   - a generic backtracking search (Compute) over candidate target nodes
//     filtered by Weisfeiler–Lehman refinement colors (graph.WLColors),
//     organized as a stabilizer chain so the found permutations generate
//     the full group without enumerating it.
//
// The group can materialize its element closure up to a cap; the verifier
// uses the full element list when available (exact orbit-minimality, i.e.
// one solver call per orbit) and falls back to the generator set plus
// inverses otherwise (a sound over-approximation that never skips an
// orbit, only prunes less).
package autom

import (
	"fmt"

	"gdpn/internal/construct"
	"gdpn/internal/graph"
)

// Perm is one automorphism: node v maps to Map[v]. When IOSwap is true the
// permutation exchanges input and output terminals (kind(Map[v]) is the
// I/O-swapped kind of v); otherwise it preserves every kind.
type Perm struct {
	Map    []int32
	IOSwap bool
}

// identity reports whether p maps every node to itself.
func (p Perm) identity() bool {
	for v, u := range p.Map {
		if int32(v) != u {
			return false
		}
	}
	return true
}

// Inverse returns the inverse permutation.
func (p Perm) Inverse() Perm {
	inv := make([]int32, len(p.Map))
	for v, u := range p.Map {
		inv[u] = int32(v)
	}
	return Perm{Map: inv, IOSwap: p.IOSwap}
}

// compose returns a∘b: v ↦ a(b(v)).
func compose(a, b Perm) Perm {
	m := make([]int32, len(a.Map))
	for v := range m {
		m[v] = a.Map[b.Map[v]]
	}
	return Perm{Map: m, IOSwap: a.IOSwap != b.IOSwap}
}

// swapKind exchanges the terminal kinds and fixes Processor.
func swapKind(k graph.Kind) graph.Kind {
	switch k {
	case graph.InputTerminal:
		return graph.OutputTerminal
	case graph.OutputTerminal:
		return graph.InputTerminal
	default:
		return k
	}
}

// CheckAutomorphism verifies that p is a valid automorphism of g: a
// bijection on the nodes that maps every edge to an edge (degrees force the
// converse) and respects kinds per p.IOSwap. A nil error is a complete
// certificate; callers discard any candidate generator that fails.
func CheckAutomorphism(g *graph.Graph, p Perm) error {
	n := g.NumNodes()
	if len(p.Map) != n {
		return fmt.Errorf("autom: permutation over %d nodes, graph has %d", len(p.Map), n)
	}
	seen := make([]bool, n)
	for v := 0; v < n; v++ {
		u := p.Map[v]
		if u < 0 || int(u) >= n {
			return fmt.Errorf("autom: node %d maps out of range to %d", v, u)
		}
		if seen[u] {
			return fmt.Errorf("autom: node %d hit twice (not a bijection)", u)
		}
		seen[u] = true
		want := g.Kind(v)
		if p.IOSwap {
			want = swapKind(want)
		}
		if g.Kind(int(u)) != want {
			return fmt.Errorf("autom: node %d (%v) maps to %d (%v), want kind %v",
				v, g.Kind(v), u, g.Kind(int(u)), want)
		}
		if g.Degree(v) != g.Degree(int(u)) {
			return fmt.Errorf("autom: node %d degree %d maps to %d degree %d",
				v, g.Degree(v), u, g.Degree(int(u)))
		}
	}
	for v := 0; v < n; v++ {
		for _, w := range g.Neighbors(v) {
			if !g.HasEdge(int(p.Map[v]), int(p.Map[w])) {
				return fmt.Errorf("autom: edge (%d,%d) maps to non-edge (%d,%d)",
					v, w, p.Map[v], p.Map[w])
			}
		}
	}
	return nil
}

// Group is a set of certified automorphism generators, optionally with the
// materialized element closure.
type Group struct {
	gens []Perm
	// elems is the full non-identity element list when the closure fit
	// under the materialization cap, nil otherwise.
	elems []Perm
	// complete reports that the generic search finished within budget, so
	// gens generate the FULL automorphism group (closure caps permitting).
	// An incomplete group is still sound for orbit pruning: a subgroup's
	// orbits refine the true orbits.
	complete bool
	n        int
}

// Generators returns the certified generators (never the identity).
func (gr *Group) Generators() []Perm { return gr.gens }

// Elements returns every non-identity group element and true when the
// closure was materialized (it fit under Options.MaxElements), or nil and
// false otherwise.
func (gr *Group) Elements() ([]Perm, bool) {
	if gr.elems == nil {
		return nil, false
	}
	return gr.elems, true
}

// Order returns the group order (including the identity) and true when the
// closure was materialized, or 0 and false otherwise.
func (gr *Group) Order() (int, bool) {
	if gr.elems == nil {
		return 0, false
	}
	return len(gr.elems) + 1, true
}

// Complete reports that the generator search covered the whole group.
func (gr *Group) Complete() bool { return gr.complete }

// Trivial reports that no non-identity automorphism was found.
func (gr *Group) Trivial() bool { return len(gr.gens) == 0 }

// Options tunes Compute.
type Options struct {
	// Seeds are candidate generators (e.g. the circulant Reflection).
	// Invalid candidates are certificate-checked and silently dropped.
	Seeds []Perm
	// MaxNodes caps the generic backtracking search; larger graphs use the
	// Seeds only (default 384). Exhaustive verification is infeasible far
	// below this anyway.
	MaxNodes int
	// Budget caps total backtracking node assignments across the whole
	// generator search (default 4e6). On exhaustion the group found so far
	// is returned with Complete() == false.
	Budget int64
	// MaxElements caps the materialized closure (default 20000). Groups
	// larger than the cap keep only their generators.
	MaxElements int
}

func (o *Options) fill() {
	if o.MaxNodes <= 0 {
		o.MaxNodes = 384
	}
	if o.Budget <= 0 {
		o.Budget = 4_000_000
	}
	if o.MaxElements <= 0 {
		o.MaxElements = 20000
	}
}

// Compute returns the automorphism group of g: certificate-checked Seeds
// plus, for graphs up to opts.MaxNodes, the generators found by the generic
// stabilizer-chain search (strict and IO-swap), with the element closure
// materialized up to opts.MaxElements.
func Compute(g *graph.Graph, opts Options) *Group {
	opts.fill()
	gr := &Group{n: g.NumNodes(), complete: true}
	for _, s := range opts.Seeds {
		if CheckAutomorphism(g, s) == nil && !s.identity() && !gr.knownElement(s) {
			gr.gens = append(gr.gens, s)
		}
	}
	if g.NumNodes() <= opts.MaxNodes {
		gr.complete = searchGenerators(g, gr, opts.Budget)
	} else {
		// Seeds alone are not known to generate the full group.
		gr.complete = false
	}
	gr.materialize(opts.MaxElements)
	return gr
}

// FromGenerators rebuilds a Group from externally supplied generators (e.g.
// loaded from the verdict store). Every generator is certificate-checked by
// CheckAutomorphism before it is trusted — a single failing generator makes
// the whole load fail, so a corrupted or mismatched cache entry can never
// smuggle an invalid symmetry into orbit pruning. complete carries the
// original search's completeness claim; it is trusted only in the sense
// that an overclaim cannot create unsoundness (orbit pruning with a
// subgroup is always sound, and completeness only widens pruning the same
// way the original run already did). maxElements ≤ 0 uses the default cap.
func FromGenerators(g *graph.Graph, gens []Perm, complete bool, maxElements int) (*Group, error) {
	if maxElements <= 0 {
		maxElements = 20000
	}
	gr := &Group{n: g.NumNodes(), complete: complete}
	for i, p := range gens {
		if err := CheckAutomorphism(g, p); err != nil {
			return nil, fmt.Errorf("autom: stored generator %d rejected: %w", i, err)
		}
		if !p.identity() && !gr.knownElement(p) {
			gr.gens = append(gr.gens, p)
		}
	}
	gr.materialize(maxElements)
	return gr, nil
}

// knownElement reports whether p duplicates a generator already kept; used
// only to dedupe the seed list.
func (gr *Group) knownElement(p Perm) bool {
	for _, e := range gr.gens {
		if permEqual(e, p) {
			return true
		}
	}
	return false
}

func permEqual(a, b Perm) bool {
	if a.IOSwap != b.IOSwap || len(a.Map) != len(b.Map) {
		return false
	}
	for i := range a.Map {
		if a.Map[i] != b.Map[i] {
			return false
		}
	}
	return true
}

// materialize BFS-closes the generators into the full element list, up to
// cap elements (excluding the identity); on overflow elems stays nil.
func (gr *Group) materialize(cap int) {
	if len(gr.gens) == 0 {
		gr.elems = []Perm{}
		return
	}
	seen := make(map[string]bool, 64)
	id := identityPerm(gr.n)
	seen[permKey(id)] = true
	var elems []Perm
	frontier := []Perm{id}
	for len(frontier) > 0 {
		var next []Perm
		for _, e := range frontier {
			for _, gen := range gr.gens {
				c := compose(gen, e)
				k := permKey(c)
				if seen[k] {
					continue
				}
				seen[k] = true
				elems = append(elems, c)
				if len(elems) > cap {
					return // closure too large; keep elems nil
				}
				next = append(next, c)
			}
		}
		frontier = next
	}
	gr.elems = elems
}

func identityPerm(n int) Perm {
	m := make([]int32, n)
	for i := range m {
		m[i] = int32(i)
	}
	return Perm{Map: m}
}

// permKey packs the permutation into a map key.
func permKey(p Perm) string {
	buf := make([]byte, 1+4*len(p.Map))
	if p.IOSwap {
		buf[0] = 1
	}
	for i, v := range p.Map {
		buf[1+4*i] = byte(v)
		buf[2+4*i] = byte(v >> 8)
		buf[3+4*i] = byte(v >> 16)
		buf[4+4*i] = byte(v >> 24)
	}
	return string(buf)
}

// Reflection builds the cheap closed-form generator of the §3.4 asymptotic
// family: the ring mirror C[j] ↦ C[(k+1-j) mod m] composed with the
// input/output exchange I[j] ↔ O[k+1-j] (and the paired terminals
// Ti[j] ↔ To[k+1-j]). It is the only non-trivial symmetry of the family —
// ring rotations do not respect the S/R split — and is certificate-checked
// before being returned.
func Reflection(g *graph.Graph, lay *construct.Layout) (Perm, error) {
	n := g.NumNodes()
	m, k := lay.M, lay.K
	p := Perm{Map: make([]int32, n), IOSwap: true}
	for i := range p.Map {
		p.Map[i] = -1
	}
	set := func(from, to int) error {
		if from < 0 || to < 0 {
			return fmt.Errorf("autom: reflection pairs a deleted node (%d↦%d)", from, to)
		}
		p.Map[from] = int32(to)
		return nil
	}
	for j := 0; j < m; j++ {
		if err := set(lay.C[j], lay.C[((k+1-j)%m+m)%m]); err != nil {
			return Perm{}, err
		}
	}
	for j := 1; j <= k+1; j++ {
		if err := set(lay.I[j], lay.O[k+1-j]); err != nil {
			return Perm{}, err
		}
		if err := set(lay.Ti[j], lay.To[k+1-j]); err != nil {
			return Perm{}, err
		}
	}
	for j := 0; j <= k; j++ {
		if err := set(lay.O[j], lay.I[k+1-j]); err != nil {
			return Perm{}, err
		}
		if err := set(lay.To[j], lay.Ti[k+1-j]); err != nil {
			return Perm{}, err
		}
	}
	for v, u := range p.Map {
		if u < 0 {
			return Perm{}, fmt.Errorf("autom: reflection leaves node %d unmapped", v)
		}
	}
	if err := CheckAutomorphism(g, p); err != nil {
		return Perm{}, err
	}
	return p, nil
}
