module gdpn

go 1.22
