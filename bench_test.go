// Benchmarks regenerating every evaluation artifact of the paper (one per
// figure/theorem, named after DESIGN.md's experiment ids), plus
// micro-benchmarks of the core operations: construction, reconfiguration,
// verification throughput, and the streaming runtime.
//
//	go test -bench=. -benchmem
package gdpn_test

import (
	"io"
	"math/rand"
	"testing"

	"gdpn/internal/bitset"
	"gdpn/internal/combin"
	"gdpn/internal/construct"
	"gdpn/internal/embed"
	"gdpn/internal/experiments"
	"gdpn/internal/faults"
	"gdpn/internal/graph"
	"gdpn/internal/pipeline"
	"gdpn/internal/search"
	"gdpn/internal/stages"
	"gdpn/internal/verify"
)

// benchExperiment reruns a registered experiment regenerator end to end.
// Quick mode keeps bench iterations affordable; cmd/gdpbench (full mode)
// produces the EXPERIMENTS.md tables.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	cfg := experiments.Config{Quick: true, Seed: 1}
	for i := 0; i < b.N; i++ {
		ok, err := experiments.RunOne(id, cfg, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		if !ok {
			b.Fatalf("experiment %s mismatched its paper claim", id)
		}
	}
}

func BenchmarkF1_PipelineNotation(b *testing.B)         { benchExperiment(b, "F1") }
func BenchmarkF2_G3kEven(b *testing.B)                  { benchExperiment(b, "F2") }
func BenchmarkF3_G3kOdd(b *testing.B)                   { benchExperiment(b, "F3") }
func BenchmarkF4_KEquals1Small(b *testing.B)            { benchExperiment(b, "F4") }
func BenchmarkF5toF9_Lemma314Nonexistence(b *testing.B) { benchExperiment(b, "F5-F9") }
func BenchmarkF10_SpecialG62(b *testing.B)              { benchExperiment(b, "F10") }
func BenchmarkF11_SpecialG82(b *testing.B)              { benchExperiment(b, "F11") }
func BenchmarkF12_SpecialG73(b *testing.B)              { benchExperiment(b, "F12") }
func BenchmarkF13_SpecialG43(b *testing.B)              { benchExperiment(b, "F13") }
func BenchmarkF14_G22_4(b *testing.B)                   { benchExperiment(b, "F14") }
func BenchmarkF15_G26_5(b *testing.B)                   { benchExperiment(b, "F15") }
func BenchmarkT313_K1Family(b *testing.B)               { benchExperiment(b, "T313") }
func BenchmarkT315_K2Family(b *testing.B)               { benchExperiment(b, "T315") }
func BenchmarkT316_K3Family(b *testing.B)               { benchExperiment(b, "T316") }
func BenchmarkT317_AsymptoticVerify(b *testing.B)       { benchExperiment(b, "T317") }
func BenchmarkT317b_Frontier(b *testing.B)              { benchExperiment(b, "T317b") }
func BenchmarkL31_LowerBounds(b *testing.B)             { benchExperiment(b, "L31") }
func BenchmarkL35_ParityBound(b *testing.B)             { benchExperiment(b, "L35") }
func BenchmarkL36_ExtendPreserves(b *testing.B)         { benchExperiment(b, "L36") }
func BenchmarkL37_G1kUnique(b *testing.B)               { benchExperiment(b, "L37") }
func BenchmarkL39_G2kUnique(b *testing.B)               { benchExperiment(b, "L39") }
func BenchmarkM_MergedModel(b *testing.B)               { benchExperiment(b, "M") }
func BenchmarkS1_StreamingRemap(b *testing.B)           { benchExperiment(b, "S1") }
func BenchmarkS2_UtilizationVsBaseline(b *testing.B)    { benchExperiment(b, "S2") }
func BenchmarkS3_BatchedTransport(b *testing.B)         { benchExperiment(b, "S3") }
func BenchmarkP1_SolverAblation(b *testing.B)           { benchExperiment(b, "P1") }
func BenchmarkP2_BisectorAblation(b *testing.B)         { benchExperiment(b, "P2") }
func BenchmarkP3_TierHitRates(b *testing.B)             { benchExperiment(b, "P3") }
func BenchmarkE1_LinkFaults(b *testing.B)               { benchExperiment(b, "E1") }
func BenchmarkP4_IncrementalRepair(b *testing.B)        { benchExperiment(b, "P4") }
func BenchmarkE2_Locality(b *testing.B)                 { benchExperiment(b, "E2") }
func BenchmarkST_StoreWarmReplay(b *testing.B)          { benchExperiment(b, "ST") }

// --- micro-benchmarks -----------------------------------------------------

func BenchmarkConstructDesignK2(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := construct.Design(50, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConstructAsymptoticN1000(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := construct.Asymptotic(1000, 6); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConstructAsymptoticN100000(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := construct.Asymptotic(100_000, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// benchReconfigure measures solving one random ≤k fault set per iteration.
func benchReconfigure(b *testing.B, n, k int, method embed.Method) {
	sol, err := construct.Design(n, k)
	if err != nil {
		b.Fatal(err)
	}
	solver := embed.NewSolver(sol.Graph, embed.Options{Method: method, Layout: sol.Layout})
	rng := rand.New(rand.NewSource(1))
	fs := bitset.New(sol.Graph.NumNodes())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs.Clear()
		for fs.Count() < k {
			fs.Add(rng.Intn(sol.Graph.NumNodes()))
		}
		r := solver.Find(fs)
		if r.Unknown {
			b.Fatal("unknown result")
		}
	}
}

func BenchmarkReconfigureN22K4Auto(b *testing.B)   { benchReconfigure(b, 22, 4, embed.Auto) }
func BenchmarkReconfigureN100K4Auto(b *testing.B)  { benchReconfigure(b, 100, 4, embed.Auto) }
func BenchmarkReconfigureN1000K6Auto(b *testing.B) { benchReconfigure(b, 1000, 6, embed.Auto) }
func BenchmarkReconfigureN10000K6Auto(b *testing.B) {
	benchReconfigure(b, 10_000, 6, embed.Auto)
}
func BenchmarkReconfigureN100K4Structured(b *testing.B) {
	benchReconfigure(b, 100, 4, embed.Structured)
}
func BenchmarkReconfigureN22K4DP(b *testing.B) { benchReconfigure(b, 22, 4, embed.DP) }
func BenchmarkReconfigureN22K4Backtracking(b *testing.B) {
	benchReconfigure(b, 22, 4, embed.Backtracking)
}

func BenchmarkExhaustiveVerifyG10_2(b *testing.B) {
	sol, err := construct.Design(10, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := verify.Exhaustive(sol.Graph, 2, verify.Options{})
		if !rep.OK() {
			b.Fatal(rep.String())
		}
	}
}

func BenchmarkSearchLemma314(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := search.Exhaustive(search.Spec{N: 5, K: 2, MaxDegree: 4}, 0)
		if !res.None() {
			b.Fatal("Lemma 3.14 violated")
		}
	}
}

func BenchmarkSearchFindG62(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := search.Find(search.Spec{N: 6, K: 2, MaxDegree: 4}, int64(i+1),
			search.FindOptions{Restarts: 3000, Moves: 800}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStreamingThroughput(b *testing.B) {
	sol, err := construct.Design(24, 4)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := pipeline.New(sol, []stages.Stage{
		stages.NewSubsample(2),
		&stages.Rescale{Gain: 1.5, Offset: 0.1},
		stages.NewFIR([]float64{0.25, 0.5, 0.25}),
		stages.NewQuantize(-16, 16, 256),
	})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	const frameSize = 4096
	frames := make([]pipeline.Frame, 16)
	for i := range frames {
		data := make([]float64, frameSize)
		for j := range data {
			data[j] = rng.NormFloat64()
		}
		frames[i] = pipeline.Frame{Seq: i, Data: data}
	}
	b.SetBytes(int64(len(frames) * frameSize * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Process(frames)
	}
}

func BenchmarkStreamingRemapLatency(b *testing.B) {
	sol, err := construct.Design(1000, 4)
	if err != nil {
		b.Fatal(err)
	}
	solver := embed.NewSolver(sol.Graph, embed.Options{Layout: sol.Layout})
	rng := rand.New(rand.NewSource(1))
	fs := bitset.New(sol.Graph.NumNodes())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs.Clear()
		for fs.Count() < 4 {
			fs.Add(rng.Intn(sol.Graph.NumNodes()))
		}
		r := solver.Find(fs)
		if !r.Found {
			b.Fatal("remap failed")
		}
	}
}

// benchSymmetryAB times the orbit-reduced exhaustive run and checks it
// against a full-enumeration reference: same verdict, all fault sets
// covered, and at least minReduction× fewer solver calls.
func benchSymmetryAB(b *testing.B, g *graph.Graph, k int, opts verify.Options, minReduction float64) {
	b.Helper()
	off := opts
	off.ExploitSymmetry = false
	on := opts
	on.ExploitSymmetry = true
	ref := verify.Exhaustive(g, k, off)
	b.ResetTimer()
	var rep *verify.Report
	for i := 0; i < b.N; i++ {
		rep = verify.Exhaustive(g, k, on)
	}
	b.StopTimer()
	if rep.OK() != ref.OK() || (rep.FailureCount > 0) != (ref.FailureCount > 0) {
		b.Fatalf("verdict mismatch: symmetry OK=%v, full OK=%v", rep.OK(), ref.OK())
	}
	if rep.Represented != ref.Checked {
		b.Fatalf("symmetry run covers %d fault sets, full enumeration has %d", rep.Represented, ref.Checked)
	}
	reduction := float64(ref.Checked) / float64(rep.Checked)
	if reduction < minReduction {
		b.Fatalf("orbit reduction %.2fx below required %.1fx (%d vs %d solver calls)",
			reduction, minReduction, rep.Checked, ref.Checked)
	}
	b.ReportMetric(float64(rep.Checked), "solver-calls")
	b.ReportMetric(reduction, "reduction-x")
}

// BenchmarkSymmetryReduction A/Bs ExploitSymmetry against full
// enumeration. G3,5 has a 32-element automorphism group, so orbit
// pruning must deliver at least a 5× cut in solver calls; the asymptotic
// family only has the I/O reflection (order 2), so ~2× is the honest
// ceiling there.
func BenchmarkSymmetryReduction(b *testing.B) {
	b.Run("G3k5", func(b *testing.B) {
		benchSymmetryAB(b, construct.G3(5), 5, verify.Options{}, 5)
	})
	b.Run("AsymptoticN16K4", func(b *testing.B) {
		g, lay, err := construct.Asymptotic(16, 4)
		if err != nil {
			b.Fatal(err)
		}
		benchSymmetryAB(b, g, 2, verify.Options{Solver: embed.Options{Layout: lay}}, 1.5)
	})
}

// BenchmarkBitsetFaultSetUpdate compares the two ways a verification
// worker can maintain its fault bitset while walking sorted k-subsets of
// a large universe: clearing and re-adding all k members every step, or
// applying only the sorted-set delta (what verify.Exhaustive does).
// Clear touches every word of the universe; the delta touches O(k).
func BenchmarkBitsetFaultSetUpdate(b *testing.B) {
	const n, k = 100_000, 6
	reset := func(fs bitset.Set, sub []int) {
		fs.Clear()
		for i := range sub {
			sub[i] = i
			fs.Add(i)
		}
	}
	b.Run("ClearRebuild", func(b *testing.B) {
		fs := bitset.New(n)
		sub := make([]int, k)
		reset(fs, sub)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if !combin.NextSubset(n, sub) {
				reset(fs, sub)
			}
			fs.Clear()
			for _, v := range sub {
				fs.Add(v)
			}
		}
	})
	b.Run("Delta", func(b *testing.B) {
		fs := bitset.New(n)
		sub := make([]int, k)
		reset(fs, sub)
		prev := make([]int, k)
		copy(prev, sub)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if !combin.NextSubset(n, sub) {
				reset(fs, sub)
			}
			// Two-pointer sorted diff, applied in place.
			pi, ci := 0, 0
			for pi < len(prev) || ci < len(sub) {
				switch {
				case ci == len(sub) || (pi < len(prev) && prev[pi] < sub[ci]):
					fs.Remove(prev[pi])
					pi++
				case pi == len(prev) || sub[ci] < prev[pi]:
					fs.Add(sub[ci])
					ci++
				default:
					pi++
					ci++
				}
			}
			copy(prev, sub)
		}
	})
}

func BenchmarkFaultModelAdversarial(b *testing.B) {
	sol, err := construct.Design(22, 4)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	model := faults.Adversarial{Pool: 6}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.Sample(rng, sol.Graph, 4)
	}
}
